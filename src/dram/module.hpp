// The DDR4 module device model: a rank of lock-step chips exposed at module
// granularity (8KB rows, 64-bit columns), with externally driven VPP/VDD
// rails, a bank state machine, lazily evaluated cell physics, an internal
// logical->physical row mapping, TRR, and optional on-die ECC.
//
// The host (src/softmc) supplies cycle-accurate command timestamps; the
// device reacts physically (partial restoration on short tRAS, read errors
// on short tRCD, decay without REF, disturbance from neighbor activations).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/units.hpp"
#include "dram/mapping.hpp"
#include "dram/mode_registers.hpp"
#include "dram/physics.hpp"
#include "dram/profile.hpp"
#include "dram/trr.hpp"
#include "dram/types.hpp"

namespace vppstudy::dram {

/// Counters a test harness reads out after an experiment.
struct ModuleStats {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t hammer_bit_flips = 0;
  std::uint64_t retention_bit_flips = 0;
  std::uint64_t trcd_read_errors = 0;
  std::uint64_t trr_mitigations = 0;
  std::uint64_t ondie_ecc_corrections = 0;

  friend bool operator==(const ModuleStats&, const ModuleStats&) = default;
};

class Module {
 public:
  /// Behavioral switches that do not belong to the device profile.
  struct Options {
    /// Evaluate flips with the reference 65536-bit row scan instead of the
    /// sorted flip-index fast path. Both are bit-exact by construction (the
    /// determinism suite asserts it); the reference scan exists so tests
    /// and benches can measure and cross-check the fast path.
    bool reference_sensing = false;
  };

  explicit Module(ModuleProfile profile);
  Module(ModuleProfile profile, Options options);

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const ModuleProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] const CellPhysics& physics() const noexcept { return physics_; }
  [[nodiscard]] const RowMapping& mapping() const noexcept { return mapping_; }
  [[nodiscard]] const ModuleStats& stats() const noexcept { return stats_; }

  // --- Power rail and environment -------------------------------------------
  /// Drive the external VPP rail. The device accepts any voltage; whether it
  /// still *responds* is a separate question (see responsive()).
  void set_vpp(double vpp_v) noexcept { vpp_v_ = vpp_v; }
  [[nodiscard]] double vpp() const noexcept { return vpp_v_; }
  void set_temperature(double temp_c) noexcept { temp_c_ = temp_c; }
  [[nodiscard]] double temperature() const noexcept { return temp_c_; }
  /// Below the module's VPPmin the access transistors can no longer connect
  /// cells to bitlines and the module stops communicating (section 7).
  [[nodiscard]] bool responsive() const noexcept {
    return vpp_v_ >= profile_.vppmin_v - 1e-9;
  }

  void set_trr_enabled(bool enabled) noexcept { trr_enabled_ = enabled; }
  /// TRR tracker-dynamics tally (insertions/evictions/displaced acts/
  /// mitigations) -- the basis of per-pattern TRR-bypass accounting: snapshot
  /// before and after an attack and diff.
  [[nodiscard]] const TrrEngine::Counters& trr_counters() const noexcept {
    return trr_.counters();
  }

  /// Test/bench hook: toggle the reference full-row scan (see Options).
  void set_reference_sensing(bool on) noexcept {
    options_.reference_sensing = on;
  }
  [[nodiscard]] bool reference_sensing() const noexcept {
    return options_.reference_sensing;
  }

  /// MRS command: program a mode register (banks must be precharged).
  /// Supported: MR0 (CL/BL), MR2 (CWL), MR4 (refresh options), MR6 (vendor
  /// TRR enable). FGR 2x widens the per-REF stripe so every row is visited
  /// twice per refresh window.
  [[nodiscard]] common::Status load_mode_register(int mr_index,
                                                  std::uint32_t operand,
                                                  double now_ns);
  [[nodiscard]] const ModeRegisters& mode_registers() const noexcept {
    return mode_registers_;
  }

  /// Optional run-to-run measurement noise (relative sigma on the effective
  /// disturbance of each hammer evaluation). Real rigs see small thermal and
  /// supply fluctuations between iterations -- the paper quantifies them via
  /// the coefficient of variation across 10 repeats (section 4.6). Default 0
  /// keeps the model bit-exact across repeated identical experiments.
  void set_measurement_noise(double relative_sigma) noexcept {
    measurement_noise_sigma_ = relative_sigma;
  }

  /// Select an independent stream for the *sequential* noise draws (read
  /// jitter, hammer measurement noise) and restart their counters. Stream 0
  /// reproduces the default sequence. The parallel sweep engine derives one
  /// stream per (module, VPP level) job so that a job's results are a pure
  /// function of its key, independent of scheduling (core/parallel_study).
  void set_noise_stream(std::uint64_t stream) noexcept {
    noise_stream_ = stream;
    read_noise_counter_ = 0;
    hammer_noise_counter_ = 0;
  }
  /// The active sequential-noise stream key (recorded in trace dumps so a
  /// replay session can reproduce the same noise draws).
  [[nodiscard]] std::uint64_t noise_stream() const noexcept {
    return noise_stream_;
  }

  // --- DDR4 command interface (now_ns: host-provided command time) -----------
  [[nodiscard]] common::Status activate(std::uint32_t bank,
                                        std::uint32_t logical_row,
                                        double now_ns);
  [[nodiscard]] common::Status precharge(std::uint32_t bank, double now_ns);
  [[nodiscard]] common::Status precharge_all(double now_ns);
  /// Read one 64-bit column burst from the open row. Reads issued before the
  /// slowest cells have sensed (short tRCD) return corrupted data.
  [[nodiscard]] common::Expected<std::array<std::uint8_t, kBytesPerColumn>>
  read(std::uint32_t bank, std::uint32_t column, double now_ns);
  [[nodiscard]] common::Status write(
      std::uint32_t bank, std::uint32_t column,
      std::span<const std::uint8_t, kBytesPerColumn> data, double now_ns);
  /// One REF command: refreshes the next stripe of rows in every bank and
  /// gives TRR its chance to act.
  [[nodiscard]] common::Status refresh(double now_ns);

  /// Bulk double-sided hammer fast path (the SoftMC LOOP instruction):
  /// alternately activate+precharge `row_a` and `row_b` `count` times each,
  /// spaced `act_to_act_ns` apart. Advances `now_ns` past the loop.
  [[nodiscard]] common::Status hammer_pair(std::uint32_t bank,
                                           std::uint32_t logical_row_a,
                                           std::uint32_t logical_row_b,
                                           std::uint64_t count,
                                           double act_to_act_ns,
                                           double& now_ns);

  /// Single-row hammer fast path: activate+precharge one row `count` times.
  /// The burst primitive of non-uniform attack patterns
  /// (harness/pattern_spec), where each aggressor is hammered on its own
  /// schedule rather than in interleaved pairs.
  [[nodiscard]] common::Status hammer_single(std::uint32_t bank,
                                             std::uint32_t logical_row,
                                             std::uint64_t count,
                                             double act_to_act_ns,
                                             double& now_ns);

  /// Test/debug support: direct snapshot of a row's stored bytes, evaluating
  /// pending physics first (as an activation at `now_ns` would).
  [[nodiscard]] std::vector<std::uint8_t> debug_row_snapshot(
      std::uint32_t bank, std::uint32_t logical_row, double now_ns);

  /// Return the device to its power-on state: all mutable experiment state
  /// (row contents, bank state machines, stats, rail/temperature pushes,
  /// noise streams, mode registers, TRR tables, refresh cursor) is reset as
  /// if the module were freshly constructed. The per-row physics store is
  /// deliberately PRESERVED: everything in it is a pure function of
  /// (module seed, bank, row), so a reused module is bit-identical to a
  /// fresh one while skipping the expensive cache rebuilds. Behavioral
  /// Options (reference_sensing) are left as currently set.
  /// softmc::Session::reset_for_job builds its worker-arena reuse on this.
  void reset_device_state();

 private:
  /// Lazily built per-row caches of quantities that are pure functions of
  /// (module seed, bank, row). They are device-lifetime immutable, so they
  /// live in a store that survives reset_device_state(); the memory budget
  /// is documented in docs/MODEL.md ("Sensing hot path & flip index").
  struct RowPhysicsCache {
    bool has_params = false;
    CellPhysics::RowParams params;
    /// Memoized trcd_row_mean_ns at `trcd_mean_vpp` (the one VPP-dependent
    /// quantity on the read path; VPP rarely changes between read bursts).
    double trcd_mean_vpp = -1.0;  ///< no valid rail voltage is negative
    double trcd_mean_ns = 0.0;
    bool has_weak = false;
    std::vector<CellPhysics::WeakCell> weak;  ///< sorted by bit index
    std::vector<std::uint64_t> polarity;      ///< charged_words, empty=unbuilt
    bool has_hammer_index = false;
    CellPhysics::RowFlipIndex hammer_index;
    bool has_retention_index = false;
    CellPhysics::RowFlipIndex retention_index;
    /// Deterministic power-up byte image of the row (hash of coordinates);
    /// empty until the row is first initialized. Re-initializing a row after
    /// reset_device_state() becomes a copy instead of 8192 hash chains.
    std::vector<std::uint8_t> powerup;
  };
  struct RowState {
    std::vector<std::uint8_t> data;  ///< kBytesPerRow once initialized
    double restore_time_ns = 0.0;
    double restore_vpp = common::kNominalVppV;
    double restore_q = 1.0;  ///< fraction of full restoration achieved
    double neigh_below_acts = 0.0;  ///< weighted snapshot at last restore
    double neigh_above_acts = 0.0;
    double neigh2_below_acts = 0.0;  ///< distance-2 snapshots
    double neigh2_above_acts = 0.0;
    bool initialized = false;
    /// Borrowed from physics_store_ (nodes are pointer-stable); wired up by
    /// row_state() when the RowState is created.
    RowPhysicsCache* physics = nullptr;
  };
  struct BankState {
    std::unordered_map<std::uint32_t, RowState> rows;  // by physical row
    /// Disturbance-weighted activation counts by physical row: a plain ACT
    /// adds 1.0, a hammer-loop activation adds its on-time factor.
    std::unordered_map<std::uint32_t, double> acts;
    std::int64_t open_physical_row = -1;
    /// State of the open row (unordered_map nodes are pointer-stable), so
    /// the per-column read/write burst skips the hash lookup.
    RowState* open_row_state = nullptr;
    double activate_time_ns = 0.0;
  };

  [[nodiscard]] common::Status check_responsive() const;
  [[nodiscard]] common::Error range_error(std::string what,
                                          std::uint32_t value,
                                          std::uint32_t limit) const;
  RowState& row_state(BankState& bank_state, std::uint32_t bank,
                      std::uint32_t physical_row);
  [[nodiscard]] double acts_of(const BankState& b,
                               std::uint32_t physical_row) const;
  /// Apply pending retention + hammer physics to a row, then mark it
  /// restored at `now_ns` (what a row activation's sensing does).
  void sense_and_restore(std::uint32_t bank, BankState& bs,
                         std::uint32_t physical_row, RowState& rs,
                         double now_ns);
  void apply_flips(std::uint32_t bank, std::uint32_t physical_row,
                   RowState& rs, double p_hammer, double p_retention,
                   double dt_s);
  void ensure_initialized(std::uint32_t bank, std::uint32_t physical_row,
                          RowState& rs);
  void refresh_physical_row(std::uint32_t bank, std::uint32_t physical_row,
                            double now_ns);

  // --- Per-row physics cache accessors (lazily built) -----------------------
  [[nodiscard]] const CellPhysics::RowParams& cached_row_params(
      std::uint32_t bank, std::uint32_t physical_row, RowState& rs);
  [[nodiscard]] const std::vector<CellPhysics::WeakCell>& cached_weak_cells(
      std::uint32_t bank, std::uint32_t physical_row, RowState& rs);
  [[nodiscard]] const std::vector<std::uint64_t>& cached_polarity(
      std::uint32_t bank, std::uint32_t physical_row, RowState& rs);
  /// The flip index for a draw kind, built on first use when `p` is small
  /// enough to plausibly be covered; returns nullptr (caller falls back to
  /// the full scan) when `p` needs more of the tail than the index keeps.
  [[nodiscard]] const CellPhysics::RowFlipIndex* usable_flip_index(
      std::uint32_t bank, std::uint32_t physical_row, RowState& rs,
      CellPhysics::CellDraw what, double p);

  ModuleProfile profile_;
  Options options_;
  CellPhysics physics_;
  RowMapping mapping_;
  TrrEngine trr_;
  ModeRegisters mode_registers_;
  bool trr_enabled_ = true;
  std::vector<BankState> banks_;
  /// Per-bank physics caches keyed by physical row; module-lifetime (pure
  /// functions of the seed), survives reset_device_state().
  std::vector<std::unordered_map<std::uint32_t, RowPhysicsCache>>
      physics_store_;
  ModuleStats stats_;
  double vpp_v_ = common::kNominalVppV;
  double temp_c_ = common::kHammerTestTempC;
  std::uint32_t refresh_cursor_ = 0;
  std::uint64_t noise_stream_ = 0;  ///< XORed into the seed of noise draws
  std::uint64_t read_noise_counter_ = 0;
  std::uint64_t hammer_noise_counter_ = 0;
  double measurement_noise_sigma_ = 0.0;
};

}  // namespace vppstudy::dram
