#include "dram/timing.hpp"

namespace vppstudy::dram {

Ddr4Timing timing_for_speed_grade(int mega_transfers_per_s) {
  Ddr4Timing t;  // defaults: DDR4-2400
  switch (mega_transfers_per_s) {
    case 2133:
      t.t_ck_ns = 0.937;
      t.t_rcd_ns = 14.06;
      t.t_rp_ns = 14.06;
      t.t_ras_ns = 33.0;
      t.t_rc_ns = 47.06;
      break;
    case 2400:
      break;  // defaults
    case 2666:
      t.t_ck_ns = 0.750;
      t.t_rcd_ns = 13.50;
      t.t_rp_ns = 13.50;
      t.t_ras_ns = 32.0;
      t.t_rc_ns = 45.5;
      break;
    case 3200:
      t.t_ck_ns = 0.625;
      t.t_rcd_ns = 13.75;
      t.t_rp_ns = 13.75;
      t.t_ras_ns = 32.0;
      t.t_rc_ns = 45.75;
      break;
    default:
      break;  // fall back to DDR4-2400
  }
  return t;
}

}  // namespace vppstudy::dram
