// SECDED(72,64) Hamming code [Hamming 1950], the "simple single error
// correcting code" of Obsv. 14: rank-level DDR4 ECC protects each 64-bit data
// word with 8 check bits, correcting any single-bit error and detecting any
// double-bit error.
#pragma once

#include <cstdint>
#include <optional>

namespace vppstudy::ecc {

/// A 72-bit codeword: 64 data bits + 8 check bits.
struct Codeword {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

enum class DecodeState {
  kClean,              ///< no error detected
  kCorrectedData,      ///< single-bit error in the data bits, corrected
  kCorrectedCheck,     ///< single-bit error in the check bits, corrected
  kUncorrectable,      ///< double-bit (or worse detectable) error
};

struct DecodeResult {
  std::uint64_t data = 0;
  DecodeState state = DecodeState::kClean;
  /// Bit position (0-63) of a corrected data-bit error, if any.
  std::optional<int> corrected_bit;
};

/// Encode 64 data bits into a SECDED codeword.
[[nodiscard]] Codeword encode(std::uint64_t data) noexcept;

/// Decode (and correct, when possible) a possibly-corrupted codeword.
[[nodiscard]] DecodeResult decode(const Codeword& cw) noexcept;

/// Flip one bit of a codeword; positions 0-63 hit data, 64-71 hit check bits.
[[nodiscard]] Codeword flip_bit(Codeword cw, int position) noexcept;

}  // namespace vppstudy::ecc
