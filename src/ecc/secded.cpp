#include "ecc/secded.hpp"

#include <array>
#include <bit>

namespace vppstudy::ecc {

namespace {

// Classic extended-Hamming construction over a 72-bit frame:
//   * frame positions 1..71 hold 7 parity bits (at the powers of two) and the
//     64 data bits (at every other position),
//   * frame position 0 holds the overall parity bit (the SECDED extension).
// The i-th Hamming parity bit covers every position whose index has bit i
// set; the syndrome of a single-bit error is then exactly its position.

/// data-bit index (0..63) -> frame position (non-power-of-two in 1..71).
constexpr std::array<int, 64> build_data_positions() {
  std::array<int, 64> pos{};
  int next = 0;
  for (int p = 1; p <= 71 && next < 64; ++p) {
    if ((p & (p - 1)) == 0) continue;  // power of two: parity position
    pos[next++] = p;
  }
  return pos;
}
constexpr std::array<int, 64> kDataPos = build_data_positions();

/// frame position -> data-bit index, or -1 for parity positions.
constexpr std::array<int, 72> build_frame_to_data() {
  std::array<int, 72> map{};
  for (auto& m : map) m = -1;
  for (int i = 0; i < 64; ++i) map[static_cast<std::size_t>(kDataPos[i])] = i;
  return map;
}
constexpr std::array<int, 72> kFrameToData = build_frame_to_data();

/// Check-bit layout inside Codeword::check: bits 0..6 are the Hamming parity
/// bits for frame positions 1,2,4,8,16,32,64; bit 7 is the overall parity.

std::uint8_t hamming_parities(std::uint64_t data) noexcept {
  std::uint8_t parities = 0;
  for (int i = 0; i < 64; ++i) {
    if (((data >> i) & 1) == 0) continue;
    const int p = kDataPos[static_cast<std::size_t>(i)];
    for (int b = 0; b < 7; ++b) {
      if (p & (1 << b)) parities = static_cast<std::uint8_t>(parities ^ (1 << b));
    }
  }
  return parities;
}

}  // namespace

Codeword encode(std::uint64_t data) noexcept {
  Codeword cw;
  cw.data = data;
  std::uint8_t check = hamming_parities(data);
  // Overall parity across data bits and the 7 Hamming bits (even parity).
  const int ones = std::popcount(data) + std::popcount(static_cast<unsigned>(check & 0x7f));
  if (ones & 1) check = static_cast<std::uint8_t>(check | 0x80);
  cw.check = check;
  return cw;
}

DecodeResult decode(const Codeword& cw) noexcept {
  DecodeResult r;
  r.data = cw.data;

  const std::uint8_t expected = hamming_parities(cw.data);
  const std::uint8_t syndrome =
      static_cast<std::uint8_t>((expected ^ cw.check) & 0x7f);

  const int ones = std::popcount(cw.data) +
                   std::popcount(static_cast<unsigned>(cw.check));
  const bool overall_parity_ok = (ones & 1) == 0;

  if (syndrome == 0 && overall_parity_ok) {
    r.state = DecodeState::kClean;
    return r;
  }
  if (syndrome == 0 && !overall_parity_ok) {
    // Only the overall parity bit itself is wrong.
    r.state = DecodeState::kCorrectedCheck;
    return r;
  }
  if (!overall_parity_ok) {
    // Odd number of flipped bits with a nonzero syndrome: single-bit error at
    // frame position `syndrome`.
    const int pos = syndrome;
    if (pos <= 71) {
      const int data_bit = kFrameToData[static_cast<std::size_t>(pos)];
      if (data_bit >= 0) {
        r.data ^= (1ULL << data_bit);
        r.state = DecodeState::kCorrectedData;
        r.corrected_bit = data_bit;
      } else {
        r.state = DecodeState::kCorrectedCheck;
      }
      return r;
    }
  }
  // Nonzero syndrome with even overall parity: double-bit error.
  r.state = DecodeState::kUncorrectable;
  return r;
}

Codeword flip_bit(Codeword cw, int position) noexcept {
  if (position < 64) {
    cw.data ^= (1ULL << position);
  } else {
    cw.check = static_cast<std::uint8_t>(cw.check ^ (1u << (position - 64)));
  }
  return cw;
}

}  // namespace vppstudy::ecc
