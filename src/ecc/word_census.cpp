#include "ecc/word_census.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace vppstudy::ecc {

WordCensus census_row(std::span<const std::uint8_t> expected,
                      std::span<const std::uint8_t> observed) {
  assert(expected.size() == observed.size());
  assert(expected.size() % 8 == 0);

  WordCensus census;
  census.total_words = expected.size() / 8;
  for (std::size_t w = 0; w < census.total_words; ++w) {
    std::uint64_t e = 0;
    std::uint64_t o = 0;
    std::memcpy(&e, expected.data() + w * 8, 8);
    std::memcpy(&o, observed.data() + w * 8, 8);
    const int flips = std::popcount(e ^ o);
    census.flipped_bits += static_cast<std::uint64_t>(flips);
    if (flips == 0) {
      ++census.clean_words;
    } else if (flips == 1) {
      ++census.single_bit_words;
    } else {
      ++census.multi_bit_words;
    }
  }
  return census;
}

}  // namespace vppstudy::ecc
