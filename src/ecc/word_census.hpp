// Word-level error census over a DRAM row (Obsv. 14/15, Fig. 11): given the
// expected and observed contents of a row, count how many 64-bit data words
// contain exactly one / more than one flipped bit, and decide whether SECDED
// would fully repair the row.
#pragma once

#include <cstdint>
#include <span>

namespace vppstudy::ecc {

struct WordCensus {
  std::uint64_t total_words = 0;
  std::uint64_t clean_words = 0;
  std::uint64_t single_bit_words = 0;  ///< exactly one flipped bit
  std::uint64_t multi_bit_words = 0;   ///< two or more flipped bits
  std::uint64_t flipped_bits = 0;

  /// SECDED repairs the row iff no word has more than one flipped bit.
  [[nodiscard]] bool secded_correctable() const noexcept {
    return multi_bit_words == 0;
  }
  [[nodiscard]] std::uint64_t erroneous_words() const noexcept {
    return single_bit_words + multi_bit_words;
  }
};

/// Compare expected vs observed row images (same length, a multiple of 8
/// bytes) word by word.
[[nodiscard]] WordCensus census_row(std::span<const std::uint8_t> expected,
                                    std::span<const std::uint8_t> observed);

}  // namespace vppstudy::ecc
