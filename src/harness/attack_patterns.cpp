#include "harness/attack_patterns.hpp"

#include <algorithm>

#include "harness/experiment.hpp"
#include "harness/pattern_spec.hpp"

namespace vppstudy::harness {

using common::Error;
using common::ErrorCode;

const char* attack_name(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kSingleSided: return "single-sided";
    case AttackKind::kDoubleSided: return "double-sided";
    case AttackKind::kManySided: return "many-sided";
    case AttackKind::kFuzzed: return "fuzzed";
  }
  return "?";
}

namespace {

/// Logical row currently mapped to a physical position.
std::uint32_t logical_at(const dram::RowMapping& mapping,
                         std::uint32_t physical) {
  return mapping.physical_to_logical(physical);
}

/// Periods compiled per Program: bounds program memory for long attacks
/// while keeping the REF schedule seamless across chunk boundaries (each
/// chunk starts exactly where the previous period grid left off).
constexpr std::uint64_t kPeriodsPerChunk = 128;

common::Expected<AttackOutcome> run_fuzzed_attack(softmc::Session& session,
                                                  std::uint32_t bank,
                                                  std::uint32_t victim_row,
                                                  const AttackConfig& config) {
  const PatternSpec& spec = *config.pattern;
  VPP_RETURN_IF_ERROR_CTX(spec.validate(), "fuzzed attack pattern");

  const auto& mapping = session.module().mapping();
  const std::uint32_t rows = mapping.rows();
  const std::uint32_t victim_phys = mapping.logical_to_physical(victim_row);

  // Aggressors at the spec's physical offsets from the victim; victims are
  // the aggressors' physical neighbors (minus the aggressors themselves),
  // plus the nominal victim even when no aggressor sits adjacent to it.
  std::vector<std::uint32_t> aggressor_phys;
  for (const AggressorSpec& a : spec.aggressors) {
    const std::int64_t phys = static_cast<std::int64_t>(victim_phys) + a.offset;
    if (phys < 0 || phys >= static_cast<std::int64_t>(rows)) {
      return Error{ErrorCode::kInvalidArgument,
                   "fuzzed pattern does not fit the bank"}
          .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
    }
    aggressor_phys.push_back(static_cast<std::uint32_t>(phys));
  }
  std::vector<std::uint32_t> aggressors;  // logical, schedule order
  aggressors.reserve(aggressor_phys.size());
  for (const std::uint32_t p : aggressor_phys) {
    aggressors.push_back(logical_at(mapping, p));
  }
  std::vector<std::uint32_t> victim_phys_rows{victim_phys};
  for (const std::uint32_t p : aggressor_phys) {
    for (const std::int64_t n :
         {static_cast<std::int64_t>(p) - 1, static_cast<std::int64_t>(p) + 1}) {
      if (n < 0 || n >= static_cast<std::int64_t>(rows)) continue;
      const auto np = static_cast<std::uint32_t>(n);
      if (std::find(aggressor_phys.begin(), aggressor_phys.end(), np) !=
          aggressor_phys.end()) {
        continue;
      }
      if (std::find(victim_phys_rows.begin(), victim_phys_rows.end(), np) ==
          victim_phys_rows.end()) {
        victim_phys_rows.push_back(np);
      }
    }
  }
  std::vector<std::uint32_t> victims;  // logical
  victims.reserve(victim_phys_rows.size());
  for (const std::uint32_t p : victim_phys_rows) {
    victims.push_back(logical_at(mapping, p));
  }

  const auto victim_image =
      dram::pattern_row(config.victim_pattern, dram::kBytesPerRow);
  const auto aggressor_image = dram::pattern_row(
      dram::inverse_pattern(config.victim_pattern), dram::kBytesPerRow);
  for (const std::uint32_t v : victims) {
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, v, victim_image),
                            "attack victim init");
  }
  for (const std::uint32_t a : aggressors) {
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, a, aggressor_image),
                            "attack aggressor init");
  }

  const double start_ns = session.clock_ns();
  const dram::TrrEngine::Counters trr_before = session.module().trr_counters();

  // Same total activation budget as a uniform double-sided attack with this
  // hammer_count (which issues 2 * hammer_count ACTs).
  std::uint64_t periods =
      pattern_periods_for_budget(spec, 2 * config.hammer_count);
  while (periods > 0) {
    const std::uint64_t now_periods = std::min(periods, kPeriodsPerChunk);
    const softmc::Program p = compile_pattern(spec, session.timing(), bank,
                                              aggressors, now_periods);
    if (auto res = session.execute(p); !res.status.ok()) {
      return std::move(res.status).error().with_context("fuzzed hammer");
    }
    periods -= now_periods;
  }

  AttackOutcome outcome;
  outcome.elapsed_ms = (session.clock_ns() - start_ns) / 1e6;
  const dram::TrrEngine::Counters trr_after = session.module().trr_counters();
  outcome.trr_mitigations = trr_after.mitigations - trr_before.mitigations;
  outcome.trr_insertions = trr_after.insertions - trr_before.insertions;
  outcome.trr_evictions = trr_after.evictions - trr_before.evictions;
  outcome.trr_displaced_acts =
      trr_after.displaced_acts - trr_before.displaced_acts;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    auto observed = session.read_row(bank, victims[i], kSafeReadTrcdNs);
    if (!observed) {
      return std::move(observed).error().with_context("attack readback");
    }
    const std::uint64_t flips = count_bit_flips(victim_image, *observed);
    outcome.total_flips += flips;
    ++outcome.victim_rows;
    if (victims[i] == victim_row) outcome.victim_flips = flips;
  }
  outcome.trr_evaded =
      outcome.total_flips > 0 && outcome.trr_mitigations == 0;
  return outcome;
}

}  // namespace

common::Expected<AttackOutcome> run_attack(softmc::Session& session,
                                           std::uint32_t bank,
                                           std::uint32_t victim_row,
                                           const AttackConfig& config) {
  if (config.kind == AttackKind::kFuzzed) {
    if (config.pattern == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "fuzzed attack needs a pattern"}
          .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
    }
    return run_fuzzed_attack(session, bank, victim_row, config);
  }

  const auto& mapping = session.module().mapping();
  const std::uint32_t rows = mapping.rows();
  const std::uint32_t victim_phys = mapping.logical_to_physical(victim_row);

  // Lay out aggressors and victims in *physical* space.
  std::vector<std::uint32_t> aggressors;  // logical addresses
  std::vector<std::uint32_t> victims;     // logical addresses
  switch (config.kind) {
    case AttackKind::kSingleSided:
      if (victim_phys == 0) {
        return Error{ErrorCode::kInvalidArgument, "victim at physical edge"}
            .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
      }
      aggressors.push_back(logical_at(mapping, victim_phys - 1));
      victims.push_back(victim_row);
      break;
    case AttackKind::kDoubleSided:
      if (victim_phys == 0 || victim_phys + 1 >= rows) {
        return Error{ErrorCode::kInvalidArgument, "victim at physical edge"}
            .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
      }
      aggressors.push_back(logical_at(mapping, victim_phys - 1));
      aggressors.push_back(logical_at(mapping, victim_phys + 1));
      victims.push_back(victim_row);
      break;
    case AttackKind::kManySided: {
      // TRRespass layout: aggressors at every even offset, victims between.
      if (config.sides < 2) {
        return Error{ErrorCode::kInvalidArgument,
                     "many-sided needs >= 2 sides"};
      }
      const std::uint32_t base = victim_phys - 1;
      if (base == 0 || base + 2ull * config.sides >= rows) {
        return Error{ErrorCode::kInvalidArgument,
                     "many-sided pattern does not fit the bank"}
            .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
      }
      for (std::uint32_t s = 0; s < config.sides; ++s) {
        aggressors.push_back(logical_at(mapping, base + 2 * s));
        if (s + 1 < config.sides) {
          victims.push_back(logical_at(mapping, base + 2 * s + 1));
        }
      }
      break;
    }
    case AttackKind::kFuzzed:
      break;  // dispatched to run_fuzzed_attack above
  }

  // Initialize victims with the pattern, aggressors with its inverse.
  const auto victim_image =
      dram::pattern_row(config.victim_pattern, dram::kBytesPerRow);
  const auto aggressor_image = dram::pattern_row(
      dram::inverse_pattern(config.victim_pattern), dram::kBytesPerRow);
  for (const std::uint32_t v : victims) {
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, v, victim_image),
                            "attack victim init");
  }
  for (const std::uint32_t a : aggressors) {
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, a, aggressor_image),
                            "attack aggressor init");
  }

  const double start_ns = session.clock_ns();
  const std::uint64_t trr_before = session.module().stats().trr_mitigations;

  // Hammer in chunks so refresh (when requested) interleaves realistically.
  const std::uint64_t chunk = config.refresh_during_attack
                                  ? std::min<std::uint64_t>(2000, config.hammer_count)
                                  : config.hammer_count;
  std::uint64_t remaining = config.hammer_count;
  // A single-sided attack still uses the pair instruction; the partner sits
  // half a bank away so its disturbance cannot reach our victims.
  const std::uint32_t far_partner = (victim_row + rows / 2) % rows;
  while (remaining > 0) {
    const std::uint64_t now_chunk = std::min(chunk, remaining);
    if (config.kind == AttackKind::kSingleSided) {
      VPP_RETURN_IF_ERROR_CTX(
          session.hammer_double_sided(bank, aggressors[0], far_partner,
                                      now_chunk),
          "single-sided hammer");
    } else {
      for (std::size_t i = 0; i + 1 < aggressors.size(); i += 2) {
        VPP_RETURN_IF_ERROR_CTX(
            session.hammer_double_sided(bank, aggressors[i],
                                        aggressors[i + 1], now_chunk),
            "paired hammer");
      }
      if (aggressors.size() % 2 != 0) {
        VPP_RETURN_IF_ERROR_CTX(
            session.hammer_double_sided(bank, aggressors.back(), far_partner,
                                        now_chunk),
            "odd-aggressor hammer");
      }
    }
    if (config.refresh_during_attack) {
      // Issue the REFs the elapsed wall-clock owes (one per tREFI per
      // hammered pair chunk: 2 * chunk * tRC of activity).
      const double activity_ns = 2.0 * static_cast<double>(now_chunk) *
                                 session.timing().t_rc_ns *
                                 std::max<std::size_t>(1, aggressors.size() / 2);
      const auto refs = static_cast<std::uint64_t>(
          activity_ns / session.timing().t_refi_ns) + 1;
      softmc::Program p(session.timing());
      for (std::uint64_t r = 0; r < refs; ++r) p.ref(session.timing().t_rfc_ns);
      if (auto res = session.execute(p); !res.status.ok()) {
        return std::move(res.status)
            .error()
            .with_context("interleaved refresh");
      }
    }
    remaining -= now_chunk;
  }

  AttackOutcome outcome;
  outcome.elapsed_ms = (session.clock_ns() - start_ns) / 1e6;
  outcome.trr_mitigations =
      session.module().stats().trr_mitigations - trr_before;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    auto observed = session.read_row(bank, victims[i], kSafeReadTrcdNs);
    if (!observed) {
      return std::move(observed).error().with_context("attack readback");
    }
    const std::uint64_t flips = count_bit_flips(victim_image, *observed);
    outcome.total_flips += flips;
    ++outcome.victim_rows;
    if (victims[i] == victim_row || i == 0) outcome.victim_flips = flips;
  }
  return outcome;
}

}  // namespace vppstudy::harness
