#include "harness/trcd_test.hpp"

#include <algorithm>
#include <bit>

namespace vppstudy::harness {

using common::Error;
using common::ErrorCode;

TrcdTest::TrcdTest(softmc::Session& session, TrcdConfig config)
    : session_(session), config_(config) {}

common::Expected<bool> TrcdTest::is_faulty(std::uint32_t bank,
                                           std::uint32_t row,
                                           dram::DataPattern pattern,
                                           double trcd_ns) {
  const auto image = dram::pattern_row(pattern, dram::kBytesPerRow);
  for (int iter = 0; iter < config_.num_iterations; ++iter) {
    VPP_RETURN_IF_ERROR_CTX(session_.init_row(bank, row, image),
                            "trcd init");
    for (std::uint32_t c = 0; c < dram::kColumnsPerRow;
         c += config_.column_stride) {
      auto word = session_.read_column_with_trcd(bank, row, c, trcd_ns);
      if (!word) {
        return std::move(word).error().with_context("trcd probe read");
      }
      for (std::uint32_t i = 0; i < dram::kBytesPerColumn; ++i) {
        if ((*word)[i] != image[c * dram::kBytesPerColumn + i]) return true;
      }
    }
  }
  return false;
}

common::Expected<TrcdRowResult> TrcdTest::test_row(std::uint32_t bank,
                                                   std::uint32_t row,
                                                   dram::DataPattern wcdp) {
  TrcdRowResult result;
  result.row = row;
  result.wcdp = wcdp;

  // Alg. 2: walk down from the nominal tRCD until a fault appears, and up
  // until reliability appears; tRCDmin is the smallest reliable setting.
  double trcd = config_.start_ns;
  bool found_faulty = false;
  bool found_reliable = false;
  double trcd_min = config_.start_ns;
  while (!found_faulty || !found_reliable) {
    VPP_ASSIGN_OR_RETURN(const bool faulty, is_faulty(bank, row, wcdp, trcd));
    if (faulty) {
      found_faulty = true;
      trcd += config_.step_ns;
      if (trcd > config_.max_ns) {
        return Error{ErrorCode::kInvalidArgument,
                     "row never became reliable below the search bound"}
            .with_bank_row(static_cast<std::int32_t>(bank), row);
      }
    } else {
      found_reliable = true;
      trcd_min = trcd;
      trcd -= config_.step_ns;
      if (trcd <= 0.0) break;  // reliable all the way down to one slot
    }
  }
  result.trcd_min_ns = trcd_min;
  return result;
}

common::Expected<std::vector<TrcdRowResult>> TrcdTest::test_rows(
    std::uint32_t bank, std::span<const std::uint32_t> rows,
    dram::DataPattern pattern) {
  std::vector<TrcdRowResult> out;
  out.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    VPP_ASSIGN_OR_RETURN(TrcdRowResult rr, test_row(bank, row, pattern));
    out.push_back(rr);
  }
  return out;
}

}  // namespace vppstudy::harness
