#include "harness/recovery.hpp"

namespace vppstudy::harness {

std::string_view fault_class_name(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::kTransient: return "transient";
    case FaultClass::kPersistent: return "persistent";
  }
  return "?";
}

FaultClass classify_error(common::ErrorCode code) noexcept {
  using common::ErrorCode;
  switch (code) {
    case ErrorCode::kUnknown:
    case ErrorCode::kModuleUnresponsive:
    case ErrorCode::kThermalTimeout:
    case ErrorCode::kTimingViolationFatal:
    case ErrorCode::kReadUnderrun:
    case ErrorCode::kDeviceProtocol:
      return FaultClass::kTransient;
    // A failed socket write, a momentarily full daemon queue, or a shard
    // lease lost to expiry is worth a retry (the worker can re-lease); the
    // rest of the server-layer codes describe requests that cannot succeed
    // as issued.
    case ErrorCode::kIoError:
    case ErrorCode::kQueueFull:
    case ErrorCode::kLeaseExpired:
      return FaultClass::kTransient;
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kVppOutOfRange:
    case ErrorCode::kBadRowImage:
    case ErrorCode::kSolverDiverged:
    case ErrorCode::kParseError:
    case ErrorCode::kNoUsableLevels:
    case ErrorCode::kEmptySample:
    case ErrorCode::kFrameTooLarge:
    case ErrorCode::kUnknownRequest:
    case ErrorCode::kQuotaExceeded:
    case ErrorCode::kCancelled:
      return FaultClass::kPersistent;
  }
  return FaultClass::kTransient;
}

std::string QuarantineRecord::to_string() const {
  return module + ": quarantined after " + std::to_string(attempts) +
         " attempt(s): [" + std::string(common::error_code_name(code)) + "] " +
         message;
}

}  // namespace vppstudy::harness
