// Deterministic seed-driven fuzzer over non-uniform attack-pattern specs.
//
// The fuzzer is a set of PURE FUNCTIONS: every generated spec is a function
// of (seed, generation, index) and every evolved population is a function of
// (scored parent population, seed, generation). No global RNG state, no
// wall-clock -- two runs with the same seed produce bit-identical
// populations, which is what lets fuzz campaigns checkpoint/resume and replay
// in CI (the pattern-fuzz gauntlet re-derives every generation from its seed
// and asserts equality).
//
// Execution and scoring live elsewhere: core/fuzz_campaign routes each
// generation through core::CampaignEngine (pattern x VPP x temperature grid,
// manifests, result cache) and feeds the per-point scores back into
// evolve_population. The fuzzer itself never touches a Session.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "harness/pattern_spec.hpp"

namespace vppstudy::harness {

/// Generation-time bounds, tighter than PatternSpec's validation limits so
/// fuzzed programs stay cheap to simulate. Mutation/crossover clamp into
/// these; hand-written corpus specs may exceed them (validation is the only
/// hard limit).
struct FuzzerLimits {
  std::uint32_t max_slots = 256;
  std::uint32_t max_aggressors = 12;
  std::uint32_t max_amplitude = 64;
  std::int32_t max_offset = 8;
};

struct FuzzerConfig {
  /// Specs per (module, VPP) population.
  std::uint32_t population = 8;
  /// Top-scoring specs copied unchanged into the next generation.
  std::uint32_t elites = 2;
  FuzzerLimits limits;
  /// Corpus seeds injected into generation 0 right after the uniform
  /// reference (invalid specs skipped, duplicates deduped by spec_hash).
  /// Seeds enter unclamped -- validation is the only hard limit -- so a
  /// hand-written corpus pattern joins the gene pool exactly as written.
  std::vector<PatternSpec> seeds;
};

/// Clamp/repair an arbitrary spec into a valid one: non-zero deduped offsets,
/// in-range phases/frequencies/amplitudes, the REF-fairness floor on
/// refs_per_period. Deterministic (no randomness); the post-condition is
/// `result.validate().ok()`. Generation and mutation funnel through this so
/// they can perturb fields freely.
[[nodiscard]] PatternSpec repair_pattern_spec(PatternSpec spec,
                                              const FuzzerLimits& limits);

/// A fresh random spec, a pure function of `seed`.
[[nodiscard]] PatternSpec random_pattern_spec(std::uint64_t seed,
                                              const FuzzerLimits& limits);

/// Point mutation of one parent: perturbs 1-3 scheduling fields, may add or
/// drop an aggressor. Pure function of (parent, seed).
[[nodiscard]] PatternSpec mutate_pattern_spec(const PatternSpec& parent,
                                              std::uint64_t seed,
                                              const FuzzerLimits& limits);

/// Uniform crossover of two parents: period geometry from one, each
/// aggressor slot drawn from either. Pure function of (a, b, seed).
[[nodiscard]] PatternSpec crossover_pattern_specs(const PatternSpec& a,
                                                  const PatternSpec& b,
                                                  std::uint64_t seed,
                                                  const FuzzerLimits& limits);

/// Generation 0: the uniform double-sided reference spec, then the config's
/// corpus seeds, then random specs up to config.population, deduplicated by
/// spec_hash.
[[nodiscard]] std::vector<PatternSpec> initial_population(
    std::uint64_t seed, const FuzzerConfig& config);

/// A population member with its measured fitness (post-TRR flip count at the
/// population's (module, VPP) point).
struct ScoredSpec {
  PatternSpec spec;
  double score = 0.0;
};

/// One evolution step: rank by (score, spec_hash) descending, keep the
/// elites, refill with mutations and crossovers of rank-biased parents, and
/// dedup by spec_hash (duplicates are replaced by fresh random specs so the
/// population never collapses). Pure function of (scored, seed, generation).
[[nodiscard]] std::vector<PatternSpec> evolve_population(
    std::span<const ScoredSpec> scored, std::uint64_t seed,
    std::uint32_t generation, const FuzzerConfig& config);

}  // namespace vppstudy::harness
