// Algorithm 1 of the paper: per-row HCfirst (binary search over hammer
// counts) and BER at a fixed 300K hammer count, via double-sided RowHammer
// with the row's worst-case data pattern.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

struct RowHammerConfig {
  std::uint64_t initial_hc = 300'000;   ///< Alg. 1: starting hammer count
  std::uint64_t initial_step = 150'000; ///< Alg. 1: starting step
  std::uint64_t min_step = 100;         ///< Alg. 1: stop when step <= this
  std::uint64_t ber_hc = 300'000;       ///< fixed hammer count for BER
  int num_iterations = 10;              ///< repeats; worst case recorded
  /// Aggressor ACT-to-ACT spacing; <= 0 uses the nominal tRC spacing (the
  /// on-time axis of multi-axis campaigns, see core/axis.hpp).
  double act_to_act_ns = -1.0;
};

struct RowHammerRowResult {
  std::uint32_t row = 0;
  dram::DataPattern wcdp = dram::DataPattern::kCheckerAA;
  std::uint64_t hc_first = 0;    ///< smallest across iterations
  double ber = 0.0;              ///< largest across iterations, at ber_hc
};

class RowHammerTest {
 public:
  RowHammerTest(softmc::Session& session, RowHammerConfig config);

  /// measure_BER of Alg. 1: initialize victim with `pattern`, aggressors
  /// with its inverse, hammer double-sided `hc` times per aggressor, read
  /// back, and return the fraction of flipped bits.
  [[nodiscard]] common::Expected<double> measure_ber(std::uint32_t bank,
                                                     std::uint32_t victim_row,
                                                     dram::DataPattern pattern,
                                                     std::uint64_t hc);

  /// Full Alg. 1 for one row: HCfirst search plus BER at the fixed count.
  [[nodiscard]] common::Expected<RowHammerRowResult> test_row(
      std::uint32_t bank, std::uint32_t victim_row, dram::DataPattern wcdp);

  /// One (module, VPP level) job unit: Alg. 1 for every sampled row at the
  /// session's current VPP. `wcdp` is parallel to `rows` (section 4.1: the
  /// per-row worst-case pattern, determined once at nominal VPP).
  [[nodiscard]] common::Expected<std::vector<RowHammerRowResult>> test_rows(
      std::uint32_t bank, std::span<const std::uint32_t> rows,
      std::span<const dram::DataPattern> wcdp);

  [[nodiscard]] const RowHammerConfig& config() const noexcept {
    return config_;
  }

 private:
  softmc::Session& session_;
  RowHammerConfig config_;
};

}  // namespace vppstudy::harness
