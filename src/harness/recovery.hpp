// Retry/backoff policy for characterization campaigns on misbehaving rigs.
// At reduced wordline voltage the paper's modules intermittently drop off the
// bus, corrupt reads, or reject commands (section 4.1); a long campaign
// survives those by classifying each typed failure as transient (retry the
// module's job with a bounded, backed-off attempt budget) or persistent
// (quarantine the module and keep the partial results). The deterministic
// counterpart of the faults themselves lives in softmc/fault_injector.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace vppstudy::harness {

/// How a typed failure should be treated by a campaign runner.
enum class FaultClass : std::uint8_t {
  kTransient,   ///< plausibly a one-off rig glitch: retry is worthwhile
  kPersistent,  ///< deterministic misconfiguration: retrying cannot help
};

[[nodiscard]] std::string_view fault_class_name(FaultClass c) noexcept;

/// Classify an ErrorCode. Transient: the device-interaction failures a
/// flaky rig produces (unresponsive module, protocol rejections, read
/// underruns, fatal timing, thermal timeouts, and kUnknown -- unattributed
/// failures get the benefit of the doubt). Persistent: configuration and
/// data errors (invalid arguments, out-of-range VPP, parse failures, empty
/// samples) that are pure functions of the inputs.
[[nodiscard]] FaultClass classify_error(common::ErrorCode code) noexcept;

/// Bounded-retry policy with exponential backoff. The backoff exists for
/// real rigs (give a wedged module time to recover); the simulated harness
/// records rather than sleeps it.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;  ///< total attempts, first one included
  double backoff_base_ms = 50.0;

  /// True when `code` is transient and attempts remain after `attempts_used`.
  [[nodiscard]] bool should_retry(common::ErrorCode code,
                                  std::uint32_t attempts_used) const noexcept {
    return attempts_used < max_attempts &&
           classify_error(code) == FaultClass::kTransient;
  }
  /// Backoff before retry attempt `attempt` (1-based): base * 2^(attempt-1).
  [[nodiscard]] double backoff_ms(std::uint32_t attempt) const noexcept {
    double ms = backoff_base_ms;
    for (std::uint32_t i = 1; i < attempt; ++i) ms *= 2.0;
    return ms;
  }
};

/// A module the campaign gave up on, with the evidence.
struct QuarantineRecord {
  std::string module;
  common::ErrorCode code = common::ErrorCode::kUnknown;
  std::string message;
  std::uint32_t attempts = 0;  ///< attempts burned before quarantine

  [[nodiscard]] std::string to_string() const;
};

}  // namespace vppstudy::harness
