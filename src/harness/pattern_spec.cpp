#include "harness/pattern_spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"

namespace vppstudy::harness {

using common::Error;
using common::ErrorCode;

namespace {

/// Nominal ACTs per tREFI (7800ns / 45.5ns tRC). validate() requires at
/// least this REF cadence so no spec can "win" by simply issuing fewer
/// refreshes than a real memory controller would -- TRR must get its
/// nominal number of mitigation opportunities per activation.
constexpr std::uint64_t kNominalActsPerTrefi = 171;

std::uint64_t quantized_spacing_ps(double ns) noexcept {
  return static_cast<std::uint64_t>(std::llround(ns * 1000.0));
}

Error field_error(std::string what) {
  return Error{ErrorCode::kInvalidArgument,
               "pattern spec: " + std::move(what)};
}

}  // namespace

std::uint64_t PatternSpec::spec_hash() const noexcept {
  std::uint64_t h = common::hash_key(
      {0x70617453ULL,  // "patS" domain separator
       slots_per_period, refs_per_period, quantized_spacing_ps(act_to_act_ns),
       aggressors.size()});
  for (const AggressorSpec& a : aggressors) {
    h = common::hash_accumulate(
        h, static_cast<std::uint64_t>(static_cast<std::int64_t>(a.offset)));
    h = common::hash_accumulate(h, a.phase);
    h = common::hash_accumulate(h, a.frequency);
    h = common::hash_accumulate(h, a.amplitude);
  }
  return h != 0 ? h : 1;
}

std::uint64_t PatternSpec::acts_per_period() const noexcept {
  std::uint64_t acts = 0;
  for (const AggressorSpec& a : aggressors) {
    acts += static_cast<std::uint64_t>(a.frequency) * a.amplitude;
  }
  return acts;
}

common::Status PatternSpec::validate() const {
  if (slots_per_period == 0 || slots_per_period > kMaxSlots) {
    return field_error("slots_per_period must be in [1, " +
                       std::to_string(kMaxSlots) + "]");
  }
  if (refs_per_period == 0 || refs_per_period > slots_per_period) {
    return field_error("refs_per_period must be in [1, slots_per_period]");
  }
  if (!(act_to_act_ns >= 0.0) || act_to_act_ns > 10000.0) {
    return field_error("act_to_act_ns must be in [0, 10000]");
  }
  if (aggressors.empty() || aggressors.size() > kMaxAggressors) {
    return field_error("aggressor count must be in [1, " +
                       std::to_string(kMaxAggressors) + "]");
  }
  for (std::size_t i = 0; i < aggressors.size(); ++i) {
    const AggressorSpec& a = aggressors[i];
    const std::string at = "aggressor " + std::to_string(i) + ": ";
    if (a.offset == 0) return field_error(at + "offset must be non-zero");
    if (a.offset < -kMaxOffset || a.offset > kMaxOffset) {
      return field_error(at + "offset must be in [-" +
                         std::to_string(kMaxOffset) + ", " +
                         std::to_string(kMaxOffset) + "]");
    }
    if (a.phase >= slots_per_period) {
      return field_error(at + "phase must be below slots_per_period");
    }
    if (a.frequency == 0 || a.frequency > slots_per_period) {
      return field_error(at + "frequency must be in [1, slots_per_period]");
    }
    if (a.amplitude == 0 || a.amplitude > kMaxAmplitude) {
      return field_error(at + "amplitude must be in [1, " +
                         std::to_string(kMaxAmplitude) + "]");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (aggressors[j].offset == a.offset) {
        return field_error(at + "duplicate offset " +
                           std::to_string(a.offset));
      }
    }
  }
  // One REF per kNominalActsPerTrefi activations, rounded up: the spec may
  // refresh MORE often than a real controller, never less.
  const std::uint64_t min_refs =
      (acts_per_period() + kNominalActsPerTrefi - 1) / kNominalActsPerTrefi;
  if (refs_per_period < min_refs) {
    return field_error("refs_per_period " + std::to_string(refs_per_period) +
                       " is below the nominal refresh cadence (" +
                       std::to_string(min_refs) + " REFs for " +
                       std::to_string(acts_per_period()) +
                       " ACTs per period)");
  }
  return common::Status::ok_status();
}

// --- JSON --------------------------------------------------------------------

void pattern_spec_json(common::JsonWriter& json, const PatternSpec& spec) {
  json.begin_object();
  if (!spec.name.empty()) json.kv("name", spec.name);
  json.kv("slots_per_period", static_cast<std::uint64_t>(spec.slots_per_period));
  json.kv("refs_per_period", static_cast<std::uint64_t>(spec.refs_per_period));
  json.kv("act_to_act_ns", spec.act_to_act_ns);
  json.key("aggressors").begin_array();
  for (const AggressorSpec& a : spec.aggressors) {
    json.begin_object();
    json.kv("offset", static_cast<std::int64_t>(a.offset));
    json.kv("phase", static_cast<std::uint64_t>(a.phase));
    json.kv("frequency", static_cast<std::uint64_t>(a.frequency));
    json.kv("amplitude", static_cast<std::uint64_t>(a.amplitude));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

common::JsonWriter pattern_spec_document(const PatternSpec& spec) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::string(PatternSpec::kSchemaPrefix) +
                        std::to_string(PatternSpec::kVersion));
  json.key("spec");
  pattern_spec_json(json, spec);
  json.end_object();
  return json;
}

common::Result<PatternSpec> parse_pattern_spec(const common::JsonValue& value) {
  if (!value.is_object()) {
    return field_error("spec is not an object");
  }
  PatternSpec spec;
  spec.name = value.string_or("name", "");
  spec.slots_per_period =
      static_cast<std::uint32_t>(value.uint_or("slots_per_period", 0));
  spec.refs_per_period =
      static_cast<std::uint32_t>(value.uint_or("refs_per_period", 0));
  spec.act_to_act_ns = value.number_or("act_to_act_ns", 0.0);
  const common::JsonValue* aggressors = value.find("aggressors");
  if (aggressors == nullptr || !aggressors->is_array()) {
    return field_error("missing 'aggressors' array");
  }
  for (const common::JsonValue& item : aggressors->items()) {
    if (!item.is_object()) {
      return field_error("aggressor entry is not an object");
    }
    AggressorSpec a;
    a.offset = static_cast<std::int32_t>(item.number_or("offset", 0.0));
    a.phase = static_cast<std::uint32_t>(item.uint_or("phase", 0));
    a.frequency = static_cast<std::uint32_t>(item.uint_or("frequency", 0));
    a.amplitude = static_cast<std::uint32_t>(item.uint_or("amplitude", 0));
    spec.aggressors.push_back(a);
  }
  VPP_RETURN_IF_ERROR(spec.validate());
  return spec;
}

common::Result<PatternSpec> parse_pattern_spec_document(
    const common::JsonValue& doc) {
  if (!doc.is_object()) return field_error("document is not an object");
  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind(PatternSpec::kSchemaPrefix, 0) != 0) {
    return field_error("unrecognized schema '" + schema + "'");
  }
  const int version = std::atoi(
      schema.substr(PatternSpec::kSchemaPrefix.size()).c_str());
  if (version < 1 || version > PatternSpec::kVersion) {
    return field_error("unsupported version " + std::to_string(version));
  }
  const common::JsonValue* spec = doc.find("spec");
  if (spec == nullptr) return field_error("missing 'spec' object");
  return parse_pattern_spec(*spec);
}

common::Result<PatternSpec> parse_pattern_spec_text(std::string_view text) {
  VPP_ASSIGN_OR_RETURN(common::JsonValue doc,
                       common::parse_json(std::string(text)));
  if (doc.is_object() && doc.find("schema") != nullptr) {
    return parse_pattern_spec_document(doc);
  }
  return parse_pattern_spec(doc);
}

// --- Scheduling & compilation ------------------------------------------------

std::vector<PatternEvent> pattern_schedule(const PatternSpec& spec) {
  std::vector<PatternEvent> events;
  for (std::uint32_t i = 0; i < spec.aggressors.size(); ++i) {
    const AggressorSpec& a = spec.aggressors[i];
    for (std::uint32_t k = 0; k < a.frequency; ++k) {
      const std::uint32_t slot =
          (a.phase + static_cast<std::uint64_t>(k) * spec.slots_per_period /
                         a.frequency) %
          spec.slots_per_period;
      events.push_back({static_cast<std::uint32_t>(slot), i});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const PatternEvent& x, const PatternEvent& y) {
              return x.slot != y.slot ? x.slot < y.slot
                                      : x.aggressor < y.aggressor;
            });
  return events;
}

softmc::Program compile_pattern(const PatternSpec& spec,
                                const dram::Ddr4Timing& timing,
                                std::uint32_t bank,
                                std::span<const std::uint32_t> aggressor_rows,
                                std::uint64_t periods) {
  const std::vector<PatternEvent> schedule = pattern_schedule(spec);
  const double spacing =
      spec.act_to_act_ns > 0.0 ? spec.act_to_act_ns : timing.t_rc_ns;
  softmc::Program p(timing);
  p.reserve(periods * (schedule.size() + spec.refs_per_period));
  for (std::uint64_t period = 0; period < periods; ++period) {
    std::size_t ev = 0;
    for (std::uint32_t j = 1; j <= spec.refs_per_period; ++j) {
      // REF boundaries are evenly spaced slot positions; the last one sits
      // at the period edge so every event precedes some REF.
      const std::uint32_t boundary =
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(j) *
                                     spec.slots_per_period /
                                     spec.refs_per_period);
      while (ev < schedule.size() && schedule[ev].slot < boundary) {
        const PatternEvent& e = schedule[ev];
        p.hammer_single(bank, aggressor_rows[e.aggressor],
                        spec.aggressors[e.aggressor].amplitude, spacing);
        ++ev;
      }
      p.ref(timing.t_rfc_ns);
    }
  }
  return p;
}

std::uint64_t pattern_periods_for_budget(const PatternSpec& spec,
                                         std::uint64_t act_budget) noexcept {
  const std::uint64_t per_period = spec.acts_per_period();
  if (per_period == 0) return 1;
  return std::max<std::uint64_t>(1, act_budget / per_period);
}

PatternSpec uniform_double_sided_spec() {
  PatternSpec spec;
  spec.name = "uniform-double-sided";
  spec.slots_per_period = 64;
  spec.refs_per_period = 1;
  spec.aggressors = {
      {-1, 0, 32, 1},
      {+1, 1, 32, 1},
  };
  return spec;
}

}  // namespace vppstudy::harness
