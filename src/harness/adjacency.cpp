#include "harness/adjacency.hpp"

#include <algorithm>

#include "dram/data_pattern.hpp"
#include "harness/experiment.hpp"

namespace vppstudy::harness {

using common::Error;

AdjacencyRevEng::AdjacencyRevEng(softmc::Session& session,
                                 AdjacencyConfig config)
    : session_(session), config_(config) {}

common::Expected<std::vector<std::uint32_t>> AdjacencyRevEng::find_victims(
    std::uint32_t bank, std::uint32_t aggressor) {
  const std::uint32_t rows = session_.module().profile().rows_per_bank;
  const auto pattern = dram::DataPattern::kCheckerAA;
  const auto victim_image = dram::pattern_row(pattern, dram::kBytesPerRow);
  const auto aggressor_image = dram::pattern_row(
      dram::inverse_pattern(pattern), dram::kBytesPerRow);

  // Candidate window around the aggressor (mappings in this model move rows
  // only short distances; real tooling widens the window until it converges).
  const std::uint32_t lo =
      aggressor > config_.scan_window ? aggressor - config_.scan_window : 0;
  const std::uint32_t hi =
      std::min(rows - 1, aggressor + config_.scan_window);

  for (std::uint32_t r = lo; r <= hi; ++r) {
    const auto& image = (r == aggressor) ? aggressor_image : victim_image;
    VPP_RETURN_IF_ERROR_CTX(session_.init_row(bank, r, image),
                            "adjacency window init");
  }

  // Single-sided hammering via the loop instruction needs a partner row;
  // use one far outside the scan window so its own victims don't interfere.
  const std::uint32_t partner = (aggressor + rows / 2) % rows;
  VPP_RETURN_IF_ERROR_CTX(
      session_.hammer_double_sided(bank, aggressor, partner,
                                   config_.hammer_count),
      "adjacency hammer");

  // Collect flip counts, then keep only the dominant victims: distance-2
  // rows also flip under extreme hammering (the blast radius), but with far
  // fewer bits -- the immediate neighbors stand out by an order of
  // magnitude, which is how real reverse-engineering separates them.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> flips_per_row;
  std::uint64_t max_flips = 0;
  for (std::uint32_t r = lo; r <= hi; ++r) {
    if (r == aggressor) continue;
    auto observed = session_.read_row(bank, r, kSafeReadTrcdNs);
    if (!observed) {
      return std::move(observed).error().with_context("adjacency scan read");
    }
    const std::uint64_t flips = count_bit_flips(victim_image, *observed);
    if (flips > 0) flips_per_row.emplace_back(r, flips);
    max_flips = std::max(max_flips, flips);
  }
  std::vector<std::uint32_t> victims;
  for (const auto& [r, flips] : flips_per_row) {
    if (flips * 10 >= max_flips) victims.push_back(r);
  }
  return victims;
}

common::Expected<std::unordered_map<std::uint32_t,
                                    AdjacencyRevEng::AggressorPair>>
AdjacencyRevEng::recover_block(std::uint32_t bank, std::uint32_t start,
                               std::uint32_t count) {
  // victim -> set of aggressors observed to disturb it.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> aggressors_of;
  const std::uint32_t margin = config_.scan_window;
  const std::uint32_t lo = start > margin ? start - margin : 0;
  const std::uint32_t hi = start + count + margin;
  for (std::uint32_t agg = lo; agg < hi; ++agg) {
    auto victims = find_victims(bank, agg);
    if (!victims) {
      return std::move(victims).error().with_context("adjacency block scan");
    }
    for (const std::uint32_t v : *victims) {
      aggressors_of[v].push_back(agg);
    }
  }

  std::unordered_map<std::uint32_t, AggressorPair> result;
  for (std::uint32_t v = start; v < start + count; ++v) {
    const auto it = aggressors_of.find(v);
    if (it == aggressors_of.end()) continue;
    AggressorPair pair;
    auto aggs = it->second;
    std::sort(aggs.begin(), aggs.end());
    aggs.erase(std::unique(aggs.begin(), aggs.end()), aggs.end());
    if (aggs.size() >= 2) {
      pair.below = aggs[0];
      pair.above = aggs[1];
      pair.complete = true;
    } else if (aggs.size() == 1) {
      pair.below = aggs[0];
      pair.above = aggs[0];
    }
    result[v] = pair;
  }
  return result;
}

}  // namespace vppstudy::harness
