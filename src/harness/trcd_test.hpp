// Algorithm 2: minimum reliable row activation latency (tRCDmin). Sweeps
// tRCD from the nominal 13.5ns in 1.5ns steps (the FPGA's command-slot
// granularity) until the boundary between faulty and reliable is pinned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

struct TrcdConfig {
  double start_ns = 13.5;        ///< nominal tRCD (section 4.3)
  double step_ns = 1.5;          ///< command-slot granularity
  double max_ns = 30.0;          ///< search safety bound
  int num_iterations = 10;
  /// Columns probed per row per tRCD step (the paper tests all 1024; smaller
  /// strides keep bench runtimes reasonable and are reported as such).
  std::uint32_t column_stride = 1;
};

struct TrcdRowResult {
  std::uint32_t row = 0;
  dram::DataPattern wcdp = dram::DataPattern::kCheckerAA;
  double trcd_min_ns = 0.0;
};

class TrcdTest {
 public:
  TrcdTest(softmc::Session& session, TrcdConfig config);

  /// Does accessing every probed column of `row` at `trcd_ns` flip any bit?
  [[nodiscard]] common::Expected<bool> is_faulty(std::uint32_t bank,
                                                 std::uint32_t row,
                                                 dram::DataPattern pattern,
                                                 double trcd_ns);

  /// Full Alg. 2 for one row.
  [[nodiscard]] common::Expected<TrcdRowResult> test_row(
      std::uint32_t bank, std::uint32_t row, dram::DataPattern wcdp);

  /// One (module, VPP level) job unit: Alg. 2 for every sampled row at the
  /// session's current VPP, all with the same data pattern.
  [[nodiscard]] common::Expected<std::vector<TrcdRowResult>> test_rows(
      std::uint32_t bank, std::span<const std::uint32_t> rows,
      dram::DataPattern pattern);

 private:
  softmc::Session& session_;
  TrcdConfig config_;
};

}  // namespace vppstudy::harness
