// Physical-adjacency reverse engineering (section 4.2): DRAM-internal row
// remapping means the rows a double-sided attack must activate are not
// logical_row +/- 1. Like prior work [11,12], we recover the mapping by
// hammering a candidate aggressor hard and observing which *logical* rows
// flip: those are its physical neighbors.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

struct AdjacencyConfig {
  std::uint64_t hammer_count = 2'000'000;  ///< strong single-sided hammering
  std::uint32_t scan_window = 8;           ///< logical rows scanned per side
};

class AdjacencyRevEng {
 public:
  AdjacencyRevEng(softmc::Session& session, AdjacencyConfig config);

  /// Hammer logical `aggressor` and return the logical rows in the scan
  /// window that flipped -- its physical neighbors.
  [[nodiscard]] common::Expected<std::vector<std::uint32_t>> find_victims(
      std::uint32_t bank, std::uint32_t aggressor);

  /// Recover the aggressor pair for every row in [start, start+count):
  /// map from victim logical row to its two aggressor logical rows.
  struct AggressorPair {
    std::uint32_t below = 0;
    std::uint32_t above = 0;
    bool complete = false;  ///< both sides recovered
  };
  [[nodiscard]] common::Expected<
      std::unordered_map<std::uint32_t, AggressorPair>>
  recover_block(std::uint32_t bank, std::uint32_t start, std::uint32_t count);

 private:
  softmc::Session& session_;
  AdjacencyConfig config_;
};

}  // namespace vppstudy::harness
