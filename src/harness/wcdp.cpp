#include "harness/wcdp.hpp"

#include "harness/experiment.hpp"
#include "harness/rowhammer_test.hpp"

namespace vppstudy::harness {

using common::Error;
using dram::DataPattern;

common::Expected<DataPattern> find_wcdp_hammer(softmc::Session& session,
                                               std::uint32_t bank,
                                               std::uint32_t row,
                                               std::uint64_t probe_hc) {
  RowHammerConfig cfg;
  cfg.num_iterations = 1;
  RowHammerTest test(session, cfg);

  // Escalate the probe count until at least one pattern produces flips
  // (strong rows may survive 300K on every pattern).
  for (int escalation = 0; escalation < 4; ++escalation) {
    // Section 4.2's ranking: the pattern with the *lowest HCfirst* wins,
    // tie-broken by the largest BER at the probe count. A coarse halving
    // ladder per pattern finds the smallest flipping count; ranking by the
    // weakest cell (not by flip counts) is what makes the WCDP stable
    // across VPP levels (footnote 9).
    DataPattern best = DataPattern::kCheckerAA;
    std::uint64_t best_first_hc = ~0ULL;
    double best_ber = 0.0;
    for (const DataPattern p : dram::kAllPatterns) {
      auto ber = test.measure_ber(bank, row, p, probe_hc);
      if (!ber) {
        return std::move(ber).error().with_context("wcdp hammer probe");
      }
      if (*ber <= 0.0) continue;
      // Halve until the flips disappear: the last flipping count is the
      // coarse HCfirst of this pattern.
      std::uint64_t first_hc = probe_hc;
      for (std::uint64_t hc = probe_hc / 2; hc >= probe_hc / 32; hc /= 2) {
        auto b = test.measure_ber(bank, row, p, hc);
        if (!b) {
          return std::move(b).error().with_context("wcdp halving ladder");
        }
        if (*b <= 0.0) break;
        first_hc = hc;
      }
      if (first_hc < best_first_hc ||
          (first_hc == best_first_hc && *ber > best_ber)) {
        best_first_hc = first_hc;
        best_ber = *ber;
        best = p;
      }
    }
    if (best_first_hc != ~0ULL) return best;
    probe_hc *= 4;
  }
  // Nothing flips even at escalated counts: the choice is immaterial.
  return DataPattern::kCheckerAA;
}

common::Expected<std::vector<DataPattern>> find_wcdp_hammer_rows(
    softmc::Session& session, std::uint32_t bank,
    std::span<const std::uint32_t> rows, std::uint64_t probe_hc) {
  std::vector<DataPattern> out;
  out.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    VPP_ASSIGN_OR_RETURN(const DataPattern p,
                         find_wcdp_hammer(session, bank, row, probe_hc));
    out.push_back(p);
  }
  return out;
}

common::Expected<DataPattern> find_wcdp_retention(softmc::Session& session,
                                                  std::uint32_t bank,
                                                  std::uint32_t row,
                                                  double probe_trefw_ms) {
  DataPattern best = DataPattern::kCheckerAA;
  double best_ber = -1.0;
  for (const DataPattern p : dram::kAllPatterns) {
    const auto image = dram::pattern_row(p, dram::kBytesPerRow);
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, row, image),
                            "wcdp retention init");
    VPP_RETURN_IF_ERROR_CTX(session.wait_ms(probe_trefw_ms),
                            "wcdp retention wait");
    auto observed = session.read_row(bank, row, kSafeReadTrcdNs);
    if (!observed) {
      return std::move(observed).error().with_context("wcdp retention read");
    }
    const double ber = bit_error_rate(image, *observed);
    if (ber > best_ber) {
      best_ber = ber;
      best = p;
    }
  }
  return best;
}

common::Expected<DataPattern> find_wcdp_trcd(softmc::Session& session,
                                             std::uint32_t bank,
                                             std::uint32_t row,
                                             double probe_trcd_ns) {
  DataPattern best = DataPattern::kCheckerAA;
  std::uint64_t best_errors = 0;
  for (const DataPattern p : dram::kAllPatterns) {
    const auto image = dram::pattern_row(p, dram::kBytesPerRow);
    VPP_RETURN_IF_ERROR_CTX(session.init_row(bank, row, image),
                            "wcdp trcd init");
    std::uint64_t errors = 0;
    for (std::uint32_t c = 0; c < dram::kColumnsPerRow; c += 64) {
      auto word = session.read_column_with_trcd(bank, row, c, probe_trcd_ns);
      if (!word) {
        return std::move(word).error().with_context("wcdp trcd probe");
      }
      for (std::uint32_t i = 0; i < dram::kBytesPerColumn; ++i) {
        errors += static_cast<std::uint64_t>(
            __builtin_popcount(static_cast<unsigned>(
                (*word)[i] ^ image[c * dram::kBytesPerColumn + i])));
      }
    }
    if (errors > best_errors) {
      best_errors = errors;
      best = p;
    }
  }
  return best;
}

}  // namespace vppstudy::harness
