#include "harness/rowhammer_test.hpp"

#include <algorithm>

#include "harness/experiment.hpp"

namespace vppstudy::harness {

using common::Error;
using common::ErrorCode;

RowHammerTest::RowHammerTest(softmc::Session& session, RowHammerConfig config)
    : session_(session), config_(config) {}

common::Expected<double> RowHammerTest::measure_ber(std::uint32_t bank,
                                                    std::uint32_t victim_row,
                                                    dram::DataPattern pattern,
                                                    std::uint64_t hc) {
  const auto neighbors =
      session_.module().mapping().physical_neighbors(victim_row);
  if (!neighbors.valid) {
    return Error{ErrorCode::kInvalidArgument,
                 "victim row has no double-sided neighborhood"}
        .with_bank_row(static_cast<std::int32_t>(bank), victim_row);
  }
  const auto victim_image = dram::pattern_row(pattern, dram::kBytesPerRow);
  const auto aggressor_image =
      dram::pattern_row(dram::inverse_pattern(pattern), dram::kBytesPerRow);

  VPP_RETURN_IF_ERROR_CTX(session_.init_row(bank, victim_row, victim_image),
                          "rowhammer victim init");
  VPP_RETURN_IF_ERROR_CTX(
      session_.init_row(bank, neighbors.below, aggressor_image),
      "rowhammer aggressor init");
  VPP_RETURN_IF_ERROR_CTX(
      session_.init_row(bank, neighbors.above, aggressor_image),
      "rowhammer aggressor init");

  if (hc > 0) {
    VPP_RETURN_IF_ERROR_CTX(
        session_.hammer_double_sided(bank, neighbors.below, neighbors.above,
                                     hc, config_.act_to_act_ns),
        "rowhammer loop");
  }

  auto observed = session_.read_row(bank, victim_row, kSafeReadTrcdNs);
  if (!observed) {
    return std::move(observed).error().with_context("rowhammer readback");
  }
  return bit_error_rate(victim_image, *observed);
}

common::Expected<RowHammerRowResult> RowHammerTest::test_row(
    std::uint32_t bank, std::uint32_t victim_row, dram::DataPattern wcdp) {
  RowHammerRowResult result;
  result.row = victim_row;
  result.wcdp = wcdp;

  // BER at the fixed hammer count: worst (largest) across iterations.
  for (int i = 0; i < config_.num_iterations; ++i) {
    VPP_ASSIGN_OR_RETURN(const double ber,
                         measure_ber(bank, victim_row, wcdp, config_.ber_hc));
    result.ber = std::max(result.ber, ber);
  }

  // HCfirst: Alg. 1's bisection. Start at initial_hc; increase while no bit
  // flips occur, decrease when they do, halving the step until it is small.
  std::uint64_t hc = config_.initial_hc;
  std::uint64_t step = config_.initial_step;
  std::uint64_t smallest_flipping = 0;
  while (step > config_.min_step) {
    double worst_ber = 0.0;
    for (int i = 0; i < config_.num_iterations; ++i) {
      VPP_ASSIGN_OR_RETURN(const double ber,
                           measure_ber(bank, victim_row, wcdp, hc));
      worst_ber = std::max(worst_ber, ber);
    }
    if (worst_ber == 0.0) {
      hc += step;
    } else {
      smallest_flipping = smallest_flipping == 0
                              ? hc
                              : std::min(smallest_flipping, hc);
      hc = hc > step ? hc - step : config_.min_step;
    }
    step /= 2;
  }
  // The paper records the HC the search converges to; take the smallest
  // count observed to flip (worst case), falling back to the final probe.
  result.hc_first = smallest_flipping != 0 ? smallest_flipping : hc;
  return result;
}

common::Expected<std::vector<RowHammerRowResult>> RowHammerTest::test_rows(
    std::uint32_t bank, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp) {
  if (rows.size() != wcdp.size()) {
    return Error{ErrorCode::kInvalidArgument, "rows/wcdp size mismatch"};
  }
  std::vector<RowHammerRowResult> out;
  out.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    VPP_ASSIGN_OR_RETURN(RowHammerRowResult rr,
                         test_row(bank, rows[i], wcdp[i]));
    out.push_back(std::move(rr));
  }
  return out;
}

}  // namespace vppstudy::harness
