#include "harness/retention_test.hpp"

#include <algorithm>

#include "harness/experiment.hpp"

namespace vppstudy::harness {

using common::Error;

RetentionTest::RetentionTest(softmc::Session& session, RetentionConfig config)
    : session_(session), config_(config) {}

common::Expected<double> RetentionTest::measure_ber(std::uint32_t bank,
                                                    std::uint32_t row,
                                                    dram::DataPattern pattern,
                                                    double trefw_ms) {
  const auto image = dram::pattern_row(pattern, dram::kBytesPerRow);
  VPP_RETURN_IF_ERROR_CTX(session_.init_row(bank, row, image),
                          "retention init");
  VPP_RETURN_IF_ERROR_CTX(session_.wait_ms(trefw_ms), "retention wait");
  auto observed = session_.read_row(bank, row, kSafeReadTrcdNs);
  if (!observed) {
    return std::move(observed).error().with_context("retention readback");
  }
  return bit_error_rate(image, *observed);
}

common::Expected<RetentionRowResult> RetentionTest::test_row(
    std::uint32_t bank, std::uint32_t row, dram::DataPattern wcdp) {
  RetentionRowResult result;
  result.row = row;
  result.wcdp = wcdp;
  for (double trefw = config_.min_trefw_ms; trefw <= config_.max_trefw_ms;
       trefw *= 2.0) {
    double worst = 0.0;
    for (int i = 0; i < config_.num_iterations; ++i) {
      VPP_ASSIGN_OR_RETURN(const double ber,
                           measure_ber(bank, row, wcdp, trefw));
      worst = std::max(worst, ber);
    }
    result.trefw_ms.push_back(trefw);
    result.ber.push_back(worst);
  }
  return result;
}

common::Expected<RetentionWordCensus> RetentionTest::census_at(
    std::uint32_t bank, std::uint32_t row, dram::DataPattern pattern,
    double trefw_ms) {
  const auto image = dram::pattern_row(pattern, dram::kBytesPerRow);
  VPP_RETURN_IF_ERROR_CTX(session_.init_row(bank, row, image), "census init");
  VPP_RETURN_IF_ERROR_CTX(session_.wait_ms(trefw_ms), "census wait");
  auto observed = session_.read_row(bank, row, kSafeReadTrcdNs);
  if (!observed) {
    return std::move(observed).error().with_context("census readback");
  }
  RetentionWordCensus rc;
  rc.row = row;
  rc.trefw_ms = trefw_ms;
  rc.census = ecc::census_row(image, *observed);
  return rc;
}

common::Expected<std::vector<RetentionRowResult>> RetentionTest::test_rows(
    std::uint32_t bank, std::span<const std::uint32_t> rows,
    dram::DataPattern pattern) {
  std::vector<RetentionRowResult> out;
  out.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    VPP_ASSIGN_OR_RETURN(RetentionRowResult rr,
                         test_row(bank, row, pattern));
    out.push_back(std::move(rr));
  }
  return out;
}

}  // namespace vppstudy::harness
