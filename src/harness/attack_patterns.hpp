// RowHammer attack patterns (section 4.2): the study uses double-sided
// attacks because they are the most effective when no defense runs, but
// discusses single-sided [Kim+ ISCA'14] and many-sided attacks (TRRespass /
// U-TRR / Blacksmith) whose purpose is to overwhelm in-DRAM TRR trackers.
// This module implements all three so their relative effectiveness -- and
// their interaction with the TRR model -- can be measured.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

struct PatternSpec;

enum class AttackKind {
  kSingleSided,  ///< one aggressor adjacent to the victim
  kDoubleSided,  ///< both adjacent aggressors (the study's workhorse)
  kManySided,    ///< TRRespass-style: N aggressor pairs straddling N victims
  kFuzzed,       ///< non-uniform PatternSpec schedule (harness/pattern_spec)
};

[[nodiscard]] const char* attack_name(AttackKind kind) noexcept;

struct AttackConfig {
  AttackKind kind = AttackKind::kDoubleSided;
  /// Activations per aggressor row.
  std::uint64_t hammer_count = 300'000;
  /// Many-sided only: number of (victim, aggressor-pair) groups; aggressors
  /// are shared between adjacent groups exactly as TRRespass lays them out.
  std::uint32_t sides = 8;
  dram::DataPattern victim_pattern = dram::DataPattern::kCheckerAA;
  /// Interleave REF commands at tREFI during the attack (gives TRR its
  /// chance to fight back; the characterization study never does this).
  bool refresh_during_attack = false;
  /// kFuzzed only: the pattern to run (non-owning; must outlive the call and
  /// be valid per PatternSpec::validate). Aggressors are laid out at the
  /// spec's physical offsets from the victim; the spec's own REF schedule is
  /// always honored, so TRR is inherently in play regardless of
  /// refresh_during_attack. hammer_count is the per-neighbor activation
  /// budget: the pattern gets 2 * hammer_count total ACTs, exactly what a
  /// uniform double-sided attack with the same hammer_count issues.
  const PatternSpec* pattern = nullptr;
};

struct AttackOutcome {
  /// Flipped bits in the primary victim row.
  std::uint64_t victim_flips = 0;
  /// Flipped bits across all victim rows of a many-sided/fuzzed pattern.
  std::uint64_t total_flips = 0;
  /// Victim rows read back (total_flips / (victim_rows * kBitsPerRow) is the
  /// attack's post-TRR bit error rate).
  std::uint64_t victim_rows = 0;
  std::uint64_t trr_mitigations = 0;
  /// TRR tracker-dynamics deltas over the attack (dram::TrrEngine::Counters
  /// diff): per-pattern bypass accounting. A crowd-out pattern shows high
  /// displaced_acts with zero mitigations; a sampled pattern shows
  /// insertions followed by mitigations.
  std::uint64_t trr_insertions = 0;
  std::uint64_t trr_evictions = 0;
  std::uint64_t trr_displaced_acts = 0;
  /// Victims flipped while TRR (enabled, fed REFs) issued zero mitigations:
  /// the tracker never caught the aggressors. The corpus-regression CI step
  /// pins this verdict per corpus pattern.
  bool trr_evaded = false;
  double elapsed_ms = 0.0;
};

/// Run one attack against `victim_row` (for many-sided, the first victim of
/// the group). Initializes victims with the pattern and aggressors with its
/// inverse, hammers, then reads back and counts flips.
[[nodiscard]] common::Expected<AttackOutcome> run_attack(
    softmc::Session& session, std::uint32_t bank, std::uint32_t victim_row,
    const AttackConfig& config);

}  // namespace vppstudy::harness
