// Non-uniform attack-pattern specifications (Blacksmith/ZenHammer-style).
//
// The characterization study only hammers uniformly (double-sided, fixed
// ACT-to-ACT cadence). Modern TRR-bypass research shows flip counts depend
// strongly on the *structure* of aggressor accesses: which rows are touched,
// how often per refresh interval, in what order, and with how many back-to-
// back activations. A PatternSpec captures that structure as data:
//
//  * a periodic slot grid (`slots_per_period` scheduling slots per period),
//  * per-aggressor placement: a physical row `offset` from the victim, a
//    starting `phase` slot, a `frequency` (appearances per period) and an
//    `amplitude` (back-to-back ACTs per appearance),
//  * REF synchronization: `refs_per_period` REF commands per period, evenly
//    spaced across the slot grid, so the pattern's relationship to the TRR
//    engine's mitigation opportunities is part of the spec itself.
//
// Specs are plain data with a versioned JSON encoding (corpus files, campaign
// manifests, wire requests) and a stable 64-bit `spec_hash` built from
// integer-quantized fields only -- the hash is the pattern's identity in
// campaign axis points, result-cache keys, and plan digests, and must be
// identical across platforms and compilers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/json.hpp"
#include "dram/timing.hpp"
#include "softmc/program.hpp"

namespace vppstudy::harness {

/// One aggressor row's schedule within the pattern period.
struct AggressorSpec {
  /// Physical-row offset from the victim (never 0; negative = above).
  std::int32_t offset = -1;
  /// Slot of the first appearance, in [0, slots_per_period).
  std::uint32_t phase = 0;
  /// Appearances per period, in [1, slots_per_period].
  std::uint32_t frequency = 1;
  /// Back-to-back activations per appearance (one hammer burst).
  std::uint32_t amplitude = 1;

  friend bool operator==(const AggressorSpec&, const AggressorSpec&) = default;
};

struct PatternSpec {
  static constexpr int kVersion = 1;
  static constexpr std::string_view kSchemaPrefix = "vppstudy-pattern-spec/";
  /// Validation bounds: generous enough for every published pattern family,
  /// tight enough that a fuzzed spec cannot compile into an absurd program.
  static constexpr std::uint32_t kMaxSlots = 4096;
  static constexpr std::uint32_t kMaxAggressors = 32;
  static constexpr std::uint32_t kMaxAmplitude = 4096;
  static constexpr std::int32_t kMaxOffset = 64;

  /// Human label for corpus files and reports; NOT part of spec_hash.
  std::string name;
  std::uint32_t slots_per_period = 64;
  std::uint32_t refs_per_period = 1;
  /// ACT-to-ACT spacing inside bursts; 0 = the nominal tRC.
  double act_to_act_ns = 0.0;
  std::vector<AggressorSpec> aggressors;

  /// Stable identity hash over the quantized scheduling fields (everything
  /// but `name`). Used as the pattern coordinate of campaign axis points and
  /// result-cache keys; never 0 for a valid spec (0 means "no pattern").
  [[nodiscard]] std::uint64_t spec_hash() const noexcept;

  /// Structural validation with typed kInvalidArgument errors naming the
  /// offending field (empty/oversized grids, zero frequencies, aggressors
  /// sharing a physical offset, phases outside the period, ...).
  [[nodiscard]] common::Status validate() const;

  /// Total ACTs one period issues across all aggressors.
  [[nodiscard]] std::uint64_t acts_per_period() const noexcept;

  friend bool operator==(const PatternSpec&, const PatternSpec&) = default;
};

// --- JSON encoding -----------------------------------------------------------
// Standalone documents carry {"schema": "vppstudy-pattern-spec/1", ...};
// embedded forms (campaign manifests, wire requests) reuse the same object
// shape. Unknown major versions are rejected, unknown keys ignored.

/// Append the spec as a JSON object to an in-progress writer (embedded form,
/// no schema key).
void pattern_spec_json(common::JsonWriter& json, const PatternSpec& spec);
/// Standalone document with the schema tag.
[[nodiscard]] common::JsonWriter pattern_spec_document(const PatternSpec& spec);

/// Parse the embedded object form. Validates the result.
[[nodiscard]] common::Result<PatternSpec> parse_pattern_spec(
    const common::JsonValue& value);
/// Parse a standalone document: requires and checks the schema tag.
[[nodiscard]] common::Result<PatternSpec> parse_pattern_spec_document(
    const common::JsonValue& doc);
/// Parse from raw text. Malformed JSON fails with the byte-offset
/// kParseError of common::parse_json; well-formed JSON with bad fields fails
/// with the typed validation errors above.
[[nodiscard]] common::Result<PatternSpec> parse_pattern_spec_text(
    std::string_view text);

// --- Scheduling & compilation ------------------------------------------------

/// One scheduled hammer burst: at slot `slot`, aggressor `aggressor` (an
/// index into spec.aggressors) issues its amplitude worth of ACTs.
struct PatternEvent {
  std::uint32_t slot = 0;
  std::uint32_t aggressor = 0;
};

/// The deterministic slot schedule of one period: appearance k of aggressor
/// i lands at slot (phase + k * slots / frequency) mod slots, and events are
/// ordered by (slot, aggressor index). A pure function of the spec.
[[nodiscard]] std::vector<PatternEvent> pattern_schedule(
    const PatternSpec& spec);

/// Compile `periods` periods of the pattern into a SoftMC program against a
/// concrete aggressor layout: `aggressor_rows[i]` is the logical row of
/// spec.aggressors[i]. Bursts become single-row hammer-loop instructions;
/// REFs are interleaved at the spec's evenly spaced slot boundaries (the
/// REF-synchronized schedule). The bank must be precharged on entry.
[[nodiscard]] softmc::Program compile_pattern(
    const PatternSpec& spec, const dram::Ddr4Timing& timing,
    std::uint32_t bank, std::span<const std::uint32_t> aggressor_rows,
    std::uint64_t periods);

/// Periods needed to spend (at least) `act_budget` total activations; >= 1.
[[nodiscard]] std::uint64_t pattern_periods_for_budget(
    const PatternSpec& spec, std::uint64_t act_budget) noexcept;

/// The study's uniform double-sided attack expressed as a PatternSpec: both
/// neighbors, alternating slots, amplitude 1, one REF per period. The
/// reference point every fuzzed pattern is scored against.
[[nodiscard]] PatternSpec uniform_double_sided_spec();

}  // namespace vppstudy::harness
