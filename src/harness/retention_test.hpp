// Algorithm 3: data retention BER across refresh windows from 16ms to 16s in
// powers of two, at a given VPP (refresh disabled; the wait *is* the
// experiment). Also the word-level census behind Obsv. 14/15 and Fig. 11.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "dram/data_pattern.hpp"
#include "ecc/word_census.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

struct RetentionConfig {
  double min_trefw_ms = 16.0;
  double max_trefw_ms = 16384.0;  ///< 16ms .. 16s in powers of two
  int num_iterations = 1;  ///< the model's waits are deterministic in time
};

struct RetentionRowResult {
  std::uint32_t row = 0;
  dram::DataPattern wcdp = dram::DataPattern::kCheckerAA;
  std::vector<double> trefw_ms;  ///< probed windows (powers of two)
  std::vector<double> ber;       ///< worst BER per window
};

/// Word-level census of a row at one refresh window (Fig. 11's unit).
struct RetentionWordCensus {
  std::uint32_t row = 0;
  double trefw_ms = 0.0;
  ecc::WordCensus census;
};

class RetentionTest {
 public:
  RetentionTest(softmc::Session& session, RetentionConfig config);

  /// One (row, tREFW) measurement: init, wait, read, compare.
  [[nodiscard]] common::Expected<double> measure_ber(std::uint32_t bank,
                                                     std::uint32_t row,
                                                     dram::DataPattern pattern,
                                                     double trefw_ms);

  /// Full Alg. 3 sweep for one row.
  [[nodiscard]] common::Expected<RetentionRowResult> test_row(
      std::uint32_t bank, std::uint32_t row, dram::DataPattern wcdp);

  /// One (module, VPP level) job unit: Alg. 3 for every sampled row at the
  /// session's current VPP, all with the same data pattern.
  [[nodiscard]] common::Expected<std::vector<RetentionRowResult>> test_rows(
      std::uint32_t bank, std::span<const std::uint32_t> rows,
      dram::DataPattern pattern);

  /// The Obsv. 14/15 analysis unit: word-level error census at one window.
  [[nodiscard]] common::Expected<RetentionWordCensus> census_at(
      std::uint32_t bank, std::uint32_t row, dram::DataPattern pattern,
      double trefw_ms);

 private:
  softmc::Session& session_;
  RetentionConfig config_;
};

}  // namespace vppstudy::harness
