// Worst-case data pattern (WCDP) selection (section 4.1): for each row and
// each test type, the most error-prone of the six canonical patterns is
// determined at nominal VPP and reused at reduced VPP levels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "dram/data_pattern.hpp"
#include "softmc/session.hpp"

namespace vppstudy::harness {

/// RowHammer WCDP: the pattern with the lowest HCfirst, tie-broken by the
/// largest BER at 300K (section 4.2). Implemented as the pattern with the
/// largest BER at a probe hammer count, escalating the count when no pattern
/// flips at all (HCfirst and BER rank patterns identically in both the model
/// and, to first order, real chips).
[[nodiscard]] common::Expected<dram::DataPattern> find_wcdp_hammer(
    softmc::Session& session, std::uint32_t bank, std::uint32_t row,
    std::uint64_t probe_hc = 300'000);

/// Batch form of find_wcdp_hammer: the WCDP-determination unit of a
/// per-module sweep job. The session must already sit at nominal VPP
/// (section 4.1 determines WCDPs there and reuses them at reduced levels).
[[nodiscard]] common::Expected<std::vector<dram::DataPattern>>
find_wcdp_hammer_rows(softmc::Session& session, std::uint32_t bank,
                      std::span<const std::uint32_t> rows,
                      std::uint64_t probe_hc = 300'000);

/// Retention WCDP: the pattern that flips at the smallest refresh window,
/// tie-broken by BER at the largest window (section 4.4). Probed at a fixed
/// long window.
[[nodiscard]] common::Expected<dram::DataPattern> find_wcdp_retention(
    softmc::Session& session, std::uint32_t bank, std::uint32_t row,
    double probe_trefw_ms = 4000.0);

/// tRCD WCDP: the pattern with the largest observed tRCDmin (section 4.3),
/// probed by counting read errors at a deliberately aggressive tRCD.
[[nodiscard]] common::Expected<dram::DataPattern> find_wcdp_trcd(
    softmc::Session& session, std::uint32_t bank, std::uint32_t row,
    double probe_trcd_ns = 9.0);

}  // namespace vppstudy::harness
