#include "harness/experiment.hpp"

#include <bit>
#include <cassert>

namespace vppstudy::harness {

std::vector<std::uint32_t> RowSampling::sample(
    const dram::RowMapping& mapping) const {
  std::vector<std::uint32_t> rows;
  const std::uint32_t total = mapping.rows();
  if (chunks == 0 || rows_per_chunk == 0) return rows;
  rows.reserve(static_cast<std::size_t>(chunks) * rows_per_chunk);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    // Chunk starts spread evenly across the bank.
    const std::uint32_t start =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(total) * c) / chunks);
    for (std::uint32_t i = 0; i < rows_per_chunk; ++i) {
      const std::uint32_t row = start + i;
      if (row >= total) break;
      if (!mapping.physical_neighbors(row).valid) continue;  // bank edge
      rows.push_back(row);
    }
  }
  return rows;
}

std::uint64_t count_bit_flips(std::span<const std::uint8_t> expected,
                              std::span<const std::uint8_t> observed) {
  assert(expected.size() == observed.size());
  std::uint64_t flips = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    flips += static_cast<std::uint64_t>(
        std::popcount(static_cast<unsigned>(expected[i] ^ observed[i])));
  }
  return flips;
}

double bit_error_rate(std::span<const std::uint8_t> expected,
                      std::span<const std::uint8_t> observed) {
  if (expected.empty()) return 0.0;
  return static_cast<double>(count_bit_flips(expected, observed)) /
         (static_cast<double>(expected.size()) * 8.0);
}

}  // namespace vppstudy::harness
