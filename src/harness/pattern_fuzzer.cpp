#include "harness/pattern_fuzzer.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/rng.hpp"

namespace vppstudy::harness {

namespace {

using common::Xoshiro256;

constexpr std::uint64_t kFuzzDomain = 0x70667a7aULL;  // "pfzz"
constexpr std::uint64_t kActsPerRef = 171;  // mirrors pattern_spec validate()

std::string hex_tag(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return s;
}

std::uint32_t clamp_u32(std::uint64_t v, std::uint32_t lo, std::uint32_t hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return static_cast<std::uint32_t>(v);
}

/// Rank-biased parent index in [0, n): min of two uniform draws, so rank 0
/// (best score) is picked most often but every rank stays reachable.
std::size_t biased_rank(Xoshiro256& rng, std::size_t n) {
  return static_cast<std::size_t>(
      std::min(rng.bounded(n), rng.bounded(n)));
}

}  // namespace

PatternSpec repair_pattern_spec(PatternSpec spec, const FuzzerLimits& limits) {
  const std::uint32_t max_slots =
      std::min(limits.max_slots, PatternSpec::kMaxSlots);
  const std::int32_t max_offset =
      std::min(limits.max_offset, PatternSpec::kMaxOffset);
  spec.slots_per_period = clamp_u32(spec.slots_per_period, 8, max_slots);
  if (!(spec.act_to_act_ns >= 0.0)) spec.act_to_act_ns = 0.0;
  if (spec.act_to_act_ns > 10000.0) spec.act_to_act_ns = 10000.0;

  if (spec.aggressors.empty()) spec.aggressors.push_back({-1, 0, 1, 1});
  if (spec.aggressors.size() > limits.max_aggressors) {
    spec.aggressors.resize(limits.max_aggressors);
  }

  std::vector<AggressorSpec> kept;
  std::unordered_set<std::int32_t> used;
  for (AggressorSpec a : spec.aggressors) {
    if (a.offset > max_offset) a.offset = max_offset;
    if (a.offset < -max_offset) a.offset = -max_offset;
    if (a.offset == 0) a.offset = -1;
    // Deduplicate offsets by probing outward from the requested one; drop
    // the aggressor if every slot in range is taken.
    std::int32_t chosen = 0;
    for (std::int32_t d = 0; d <= 2 * max_offset && chosen == 0; ++d) {
      for (std::int32_t sign : {+1, -1}) {
        const std::int32_t cand = a.offset + sign * d;
        if (cand == 0 || cand < -max_offset || cand > max_offset) continue;
        if (!used.contains(cand)) {
          chosen = cand;
          break;
        }
      }
    }
    if (chosen == 0) continue;
    a.offset = chosen;
    used.insert(chosen);
    a.phase %= spec.slots_per_period;
    a.frequency = clamp_u32(a.frequency, 1, spec.slots_per_period);
    a.amplitude = clamp_u32(
        a.amplitude, 1,
        std::min(limits.max_amplitude, PatternSpec::kMaxAmplitude));
    kept.push_back(a);
  }
  spec.aggressors = std::move(kept);

  // The REF-fairness floor must be satisfiable (refs <= slots), so shrink
  // amplitudes, then frequencies, until one REF per 171 ACTs fits the grid.
  while (spec.acts_per_period() >
         static_cast<std::uint64_t>(spec.slots_per_period) * kActsPerRef) {
    bool shrunk = false;
    for (AggressorSpec& a : spec.aggressors) {
      if (a.amplitude > 1) {
        a.amplitude /= 2;
        shrunk = true;
      }
    }
    if (!shrunk) {
      for (AggressorSpec& a : spec.aggressors) {
        if (a.frequency > 1) a.frequency /= 2;
      }
    }
  }
  const std::uint64_t min_refs =
      (spec.acts_per_period() + kActsPerRef - 1) / kActsPerRef;
  spec.refs_per_period =
      clamp_u32(std::max<std::uint64_t>(spec.refs_per_period, min_refs), 1,
                spec.slots_per_period);

  assert(spec.validate().ok());
  return spec;
}

PatternSpec random_pattern_spec(std::uint64_t seed,
                                const FuzzerLimits& limits) {
  Xoshiro256 rng(common::hash_key({kFuzzDomain, 1, seed}));
  PatternSpec spec;
  spec.slots_per_period =
      8 + static_cast<std::uint32_t>(rng.bounded(limits.max_slots));
  spec.refs_per_period = 1 + static_cast<std::uint32_t>(rng.bounded(4));
  const std::uint64_t n = 1 + rng.bounded(limits.max_aggressors);
  for (std::uint64_t i = 0; i < n; ++i) {
    AggressorSpec a;
    const std::int32_t mag =
        1 + static_cast<std::int32_t>(rng.bounded(
                static_cast<std::uint64_t>(limits.max_offset)));
    a.offset = rng.bounded(2) == 0 ? -mag : mag;
    a.phase = static_cast<std::uint32_t>(rng.bounded(spec.slots_per_period));
    // Frequencies log-distributed: low-frequency decoys and high-frequency
    // hammers are both one draw away.
    const std::uint32_t freq_cap =
        1u << rng.bounded(9);  // 1..256, clamped by repair
    a.frequency = 1 + static_cast<std::uint32_t>(rng.bounded(freq_cap));
    a.amplitude =
        1 + static_cast<std::uint32_t>(rng.bounded(limits.max_amplitude));
    spec.aggressors.push_back(a);
  }
  spec = repair_pattern_spec(std::move(spec), limits);
  spec.name = "fuzz-" + hex_tag(spec.spec_hash());
  return spec;
}

PatternSpec mutate_pattern_spec(const PatternSpec& parent, std::uint64_t seed,
                                const FuzzerLimits& limits) {
  Xoshiro256 rng(common::hash_key({kFuzzDomain, 2, seed, parent.spec_hash()}));
  PatternSpec spec = parent;
  const std::uint64_t mutations = 1 + rng.bounded(3);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    switch (rng.bounded(6)) {
      case 0:  // rescale the slot grid
        spec.slots_per_period = static_cast<std::uint32_t>(
            rng.bounded(2) == 0 ? spec.slots_per_period * 2
                                : spec.slots_per_period / 2);
        break;
      case 1:  // add an aggressor
        spec.aggressors.push_back(
            {static_cast<std::int32_t>(1 + rng.bounded(static_cast<std::uint64_t>(
                 limits.max_offset))) *
                 (rng.bounded(2) == 0 ? -1 : 1),
             static_cast<std::uint32_t>(rng.bounded(
                 std::max<std::uint32_t>(1, spec.slots_per_period))),
             1 + static_cast<std::uint32_t>(rng.bounded(16)),
             1 + static_cast<std::uint32_t>(rng.bounded(limits.max_amplitude))});
        break;
      case 2:  // drop an aggressor
        if (spec.aggressors.size() > 1) {
          spec.aggressors.erase(spec.aggressors.begin() +
                                static_cast<std::ptrdiff_t>(
                                    rng.bounded(spec.aggressors.size())));
        }
        break;
      default: {  // perturb one field of one aggressor
        AggressorSpec& a =
            spec.aggressors[rng.bounded(spec.aggressors.size())];
        switch (rng.bounded(4)) {
          case 0:
            a.offset += rng.bounded(2) == 0 ? -1 : 1;
            break;
          case 1:
            a.phase += static_cast<std::uint32_t>(1 + rng.bounded(8));
            break;
          case 2:
            a.frequency = static_cast<std::uint32_t>(
                rng.bounded(2) == 0 ? a.frequency * 2
                                    : std::max(1u, a.frequency / 2));
            break;
          default:
            a.amplitude = static_cast<std::uint32_t>(
                rng.bounded(2) == 0 ? a.amplitude * 2
                                    : std::max(1u, a.amplitude / 2));
            break;
        }
        break;
      }
    }
  }
  spec = repair_pattern_spec(std::move(spec), limits);
  spec.name = "fuzz-" + hex_tag(spec.spec_hash());
  return spec;
}

PatternSpec crossover_pattern_specs(const PatternSpec& a, const PatternSpec& b,
                                    std::uint64_t seed,
                                    const FuzzerLimits& limits) {
  Xoshiro256 rng(
      common::hash_key({kFuzzDomain, 3, seed, a.spec_hash(), b.spec_hash()}));
  PatternSpec spec;
  const PatternSpec& geometry = rng.bounded(2) == 0 ? a : b;
  spec.slots_per_period = geometry.slots_per_period;
  spec.refs_per_period = geometry.refs_per_period;
  spec.act_to_act_ns = geometry.act_to_act_ns;
  const std::size_t n = std::max(a.aggressors.size(), b.aggressors.size());
  for (std::size_t i = 0; i < n; ++i) {
    const PatternSpec& pick = rng.bounded(2) == 0 ? a : b;
    const PatternSpec& other = &pick == &a ? b : a;
    if (i < pick.aggressors.size()) {
      spec.aggressors.push_back(pick.aggressors[i]);
    } else if (i < other.aggressors.size() && rng.bounded(2) == 0) {
      spec.aggressors.push_back(other.aggressors[i]);
    }
  }
  spec = repair_pattern_spec(std::move(spec), limits);
  spec.name = "fuzz-" + hex_tag(spec.spec_hash());
  return spec;
}

std::vector<PatternSpec> initial_population(std::uint64_t seed,
                                            const FuzzerConfig& config) {
  std::vector<PatternSpec> population;
  std::unordered_set<std::uint64_t> hashes;
  PatternSpec reference = uniform_double_sided_spec();
  hashes.insert(reference.spec_hash());
  population.push_back(std::move(reference));
  for (const PatternSpec& seed_spec : config.seeds) {
    if (population.size() >= config.population) break;
    if (!seed_spec.validate().ok()) continue;
    if (hashes.insert(seed_spec.spec_hash()).second) {
      population.push_back(seed_spec);
    }
  }
  for (std::uint64_t i = 0; population.size() < config.population; ++i) {
    PatternSpec spec = random_pattern_spec(
        common::hash_key({kFuzzDomain, 4, seed, i}), config.limits);
    if (hashes.insert(spec.spec_hash()).second) {
      population.push_back(std::move(spec));
    }
  }
  return population;
}

std::vector<PatternSpec> evolve_population(std::span<const ScoredSpec> scored,
                                           std::uint64_t seed,
                                           std::uint32_t generation,
                                           const FuzzerConfig& config) {
  if (scored.empty()) return initial_population(seed, config);

  // Canonical rank order: score descending, spec_hash ascending as the
  // deterministic tie-break (scores are often identical at low VPP where
  // nothing flips).
  std::vector<const ScoredSpec*> ranked;
  ranked.reserve(scored.size());
  for (const ScoredSpec& s : scored) ranked.push_back(&s);
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredSpec* x, const ScoredSpec* y) {
              if (x->score != y->score) return x->score > y->score;
              return x->spec.spec_hash() < y->spec.spec_hash();
            });

  std::vector<PatternSpec> next;
  std::unordered_set<std::uint64_t> hashes;
  const std::size_t elites =
      std::min<std::size_t>(config.elites, ranked.size());
  for (std::size_t i = 0; i < elites && next.size() < config.population; ++i) {
    if (hashes.insert(ranked[i]->spec.spec_hash()).second) {
      next.push_back(ranked[i]->spec);
    }
  }

  Xoshiro256 rng(common::hash_key({kFuzzDomain, 5, seed, generation}));
  for (std::uint64_t attempt = 0;
       next.size() < config.population && attempt < 64 * config.population;
       ++attempt) {
    const std::uint64_t child_seed =
        common::hash_key({kFuzzDomain, 6, seed, generation, attempt});
    PatternSpec child;
    const std::uint64_t op = rng.bounded(10);
    if (op < 6) {
      child = mutate_pattern_spec(ranked[biased_rank(rng, ranked.size())]->spec,
                                  child_seed, config.limits);
    } else if (op < 9 && ranked.size() >= 2) {
      const std::size_t pa = biased_rank(rng, ranked.size());
      std::size_t pb = biased_rank(rng, ranked.size());
      if (pb == pa) pb = (pb + 1) % ranked.size();
      child = crossover_pattern_specs(ranked[pa]->spec, ranked[pb]->spec,
                                      child_seed, config.limits);
    } else {
      child = random_pattern_spec(child_seed, config.limits);
    }
    if (hashes.insert(child.spec_hash()).second) {
      next.push_back(std::move(child));
    }
  }
  return next;
}

}  // namespace vppstudy::harness
