// Shared experiment plumbing: row sampling (the paper tests four chunks of
// 1K rows evenly distributed across a bank, section 4.2), bit-error counting,
// and result records.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/data_pattern.hpp"
#include "dram/mapping.hpp"

namespace vppstudy::harness {

/// Verification reads use this generous activation latency so that marginal
/// tRCD at reduced VPP cannot corrupt the readout of a RowHammer or
/// retention experiment (the paper's "disabling sources of interference",
/// section 4.1; erroneous modules operate reliably at 24ns per Obsv. 7).
inline constexpr double kSafeReadTrcdNs = 30.0;

/// Which rows of a bank an experiment touches.
struct RowSampling {
  std::uint32_t bank = 0;
  std::uint32_t chunks = 4;          ///< evenly distributed across the bank
  std::uint32_t rows_per_chunk = 1024;

  /// Concrete logical row addresses. Rows whose physical position sits at a
  /// bank edge (no two neighbors) are skipped, as are rows whose physical
  /// neighborhood would overlap a chunk boundary ambiguously.
  [[nodiscard]] std::vector<std::uint32_t> sample(
      const dram::RowMapping& mapping) const;
};

/// Count bit flips between an expected and an observed row image.
[[nodiscard]] std::uint64_t count_bit_flips(
    std::span<const std::uint8_t> expected,
    std::span<const std::uint8_t> observed);

/// BER = flipped bits / total bits (the paper's per-row definition).
[[nodiscard]] double bit_error_rate(std::span<const std::uint8_t> expected,
                                    std::span<const std::uint8_t> observed);

}  // namespace vppstudy::harness
