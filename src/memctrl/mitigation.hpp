// Controller-side RowHammer mitigation policies (section 3 of the paper
// surveys these; section 9 argues VPP scaling is *complementary* to them).
// Implemented here so the ablation benches can quantify that claim: at
// reduced VPP the same protection level needs a cheaper policy setting.
//
//  * PARA     [Kim+ ISCA'14]: on every ACT, refresh the neighbors with a
//             small probability p. Stateless; overhead ~ 2p extra ACTs.
//  * Graphene [Park+ MICRO'20]: Misra-Gries counters per bank; when a row's
//             estimated count crosses a threshold, refresh its neighbors
//             and reset. Deterministic protection if threshold < HCfirst/2.
//  * BlockHammer-lite [Yaglikci+ HPCA'21]: rate-limits rows whose activation
//             count in a rolling window exceeds a blacklist threshold
//             (modeled as a throttle delay plus neighbor refresh).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace vppstudy::memctrl {

/// What a policy wants done after observing one ACT.
struct MitigationAction {
  /// Logical rows whose *physical neighbors* must be preventively refreshed.
  std::vector<std::uint32_t> refresh_neighbors_of;
  /// Extra delay imposed on the requester (BlockHammer-style throttling).
  double throttle_ns = 0.0;
};

class MitigationPolicy {
 public:
  virtual ~MitigationPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Observe an ACT to (bank, logical row) and decide on countermeasures.
  [[nodiscard]] virtual MitigationAction on_activate(std::uint32_t bank,
                                                     std::uint32_t row) = 0;
  virtual void reset() = 0;

  [[nodiscard]] std::uint64_t mitigations() const noexcept {
    return mitigations_;
  }

 protected:
  std::uint64_t mitigations_ = 0;
};

/// The do-nothing baseline.
class NoMitigation final : public MitigationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] MitigationAction on_activate(std::uint32_t,
                                             std::uint32_t) override {
    return {};
  }
  void reset() override {}
};

/// PARA: probabilistic adjacent-row activation.
class Para final : public MitigationPolicy {
 public:
  /// `probability` is the per-ACT chance of a neighbor refresh (the paper
  /// that proposed PARA uses ~0.001-0.01 depending on HCfirst).
  explicit Para(double probability, std::uint64_t seed = 0x9a7a);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MitigationAction on_activate(std::uint32_t bank,
                                             std::uint32_t row) override;
  void reset() override;
  [[nodiscard]] double probability() const noexcept { return probability_; }

 private:
  double probability_;
  common::Xoshiro256 rng_;
  std::uint64_t seed_;
};

/// Graphene: exact-ish frequent-item counting with a refresh threshold.
class Graphene final : public MitigationPolicy {
 public:
  Graphene(std::uint32_t banks, std::uint32_t table_entries,
           std::uint64_t threshold);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MitigationAction on_activate(std::uint32_t bank,
                                             std::uint32_t row) override;
  void reset() override;
  [[nodiscard]] std::uint64_t threshold() const noexcept { return threshold_; }

 private:
  struct Entry {
    std::uint32_t row = 0;
    std::uint64_t count = 0;
  };
  std::uint32_t table_entries_;
  std::uint64_t threshold_;
  std::vector<std::vector<Entry>> tables_;
};

/// BlockHammer-lite: blacklist-and-throttle.
class BlockHammerLite final : public MitigationPolicy {
 public:
  BlockHammerLite(std::uint32_t banks, std::uint64_t blacklist_threshold,
                  double throttle_ns);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] MitigationAction on_activate(std::uint32_t bank,
                                             std::uint32_t row) override;
  void reset() override;
  [[nodiscard]] std::uint64_t throttled_activations() const noexcept {
    return throttled_;
  }

 private:
  struct Entry {
    std::uint32_t row = 0;
    std::uint64_t count = 0;
  };
  std::uint64_t threshold_;
  double throttle_ns_;
  std::vector<std::vector<Entry>> tables_;
  std::uint64_t throttled_ = 0;
};

}  // namespace vppstudy::memctrl
