#include "memctrl/controller.hpp"

#include <cassert>
#include <cstring>

#include "common/units.hpp"

namespace vppstudy::memctrl {

using common::Error;
using common::Status;

namespace {

std::uint64_t ecc_key(const dram::Address& a) noexcept {
  return (static_cast<std::uint64_t>(a.bank) << 48) |
         (static_cast<std::uint64_t>(a.row) << 16) |
         static_cast<std::uint64_t>(a.column);
}

}  // namespace

MemoryController::MemoryController(softmc::Session& session,
                                   ControllerOptions options,
                                   std::unique_ptr<MitigationPolicy> policy)
    : session_(session), options_(std::move(options)),
      policy_(std::move(policy)),
      next_refresh_ns_(session.clock_ns() + session.timing().t_refi_ns),
      next_selective_ns_(session.clock_ns() +
                         common::ms_to_ns(common::kNominalTrefwMs) / 2.0),
      open_rows_(dram::kBanksPerRank, -1) {
  assert(policy_ != nullptr);
  // The controller owns refresh; the session must not double-issue.
  session_.set_auto_refresh(false);
}

common::Status MemoryController::close_all_rows() {
  for (std::uint32_t bank = 0; bank < open_rows_.size(); ++bank) {
    if (open_rows_[bank] < 0) continue;
    softmc::Program p(session_.timing());
    p.pre(bank, session_.timing().t_rp_ns);
    if (auto r = session_.execute(p); !r.status.ok()) return r.status;
    open_rows_[bank] = -1;
  }
  return Status::ok_status();
}

Status MemoryController::catch_up_refresh() {
  if (!options_.auto_refresh) return Status::ok_status();
  // REF and targeted refreshes need precharged banks.
  if (session_.clock_ns() >= next_refresh_ns_ ||
      (!options_.fast_refresh_rows.empty() &&
       session_.clock_ns() >= next_selective_ns_)) {
    if (auto st = close_all_rows(); !st.ok()) return st;
  }
  // Issue any REFs whose tREFI slots have elapsed.
  while (session_.clock_ns() >= next_refresh_ns_) {
    softmc::Program p(session_.timing());
    p.ref(session_.timing().t_rp_ns);
    if (auto r = session_.execute(p); !r.status.ok()) return r.status;
    ++stats_.refresh_commands;
    next_refresh_ns_ += session_.timing().t_refi_ns;
  }
  // Selective 2x refresh: touch the flagged rows once per half-tREFW.
  if (!options_.fast_refresh_rows.empty() &&
      session_.clock_ns() >= next_selective_ns_) {
    for (const auto& addr : options_.fast_refresh_rows) {
      if (auto st = touch_row(addr.bank, addr.row); !st.ok()) return st;
      ++stats_.selective_refreshes;
    }
    next_selective_ns_ += common::ms_to_ns(common::kNominalTrefwMs) / 2.0;
  }
  return Status::ok_status();
}

Status MemoryController::touch_row(std::uint32_t bank, std::uint32_t row) {
  softmc::Program p(session_.timing());
  p.act(bank, row);
  p.pre(bank);  // default delay = tRAS: full restoration
  return session_.execute(p).status;
}

Status MemoryController::refresh_neighbors_of(std::uint32_t bank,
                                              std::uint32_t row) {
  const auto neighbors = session_.module().mapping().physical_neighbors(row);
  if (!neighbors.valid) return Status::ok_status();
  if (auto st = touch_row(bank, neighbors.below); !st.ok()) return st;
  if (auto st = touch_row(bank, neighbors.above); !st.ok()) return st;
  stats_.mitigative_refreshes += 2;
  return Status::ok_status();
}

common::Expected<Response> MemoryController::execute(const Request& request) {
  if (auto st = catch_up_refresh(); !st.ok()) {
    return std::move(st).error().with_context("catch_up_refresh");
  }

  const auto& addr = request.address;
  const auto& t = session_.timing();
  const double trcd =
      options_.trcd_override_ns > 0.0 ? options_.trcd_override_ns : t.t_rcd_ns;

  const bool open_page = options_.page_policy == PagePolicy::kOpenPage;
  const bool row_hit =
      open_page && addr.bank < open_rows_.size() &&
      open_rows_[addr.bank] == static_cast<std::int64_t>(addr.row);

  // Mitigation observes only real activations: a row hit issues none.
  MitigationAction action;
  if (!row_hit) {
    action = policy_->on_activate(addr.bank, addr.row);
    if (action.throttle_ns > 0.0) {
      softmc::Program wait(t);
      wait.wait_ns(action.throttle_ns);
      if (auto r = session_.execute(wait); !r.status.ok())
        return std::move(r.status).error().with_context("mitigation throttle");
      stats_.throttled_ns += action.throttle_ns;
    }
  }

  Response response;
  softmc::Program p(t);
  if (row_hit) {
    ++stats_.row_hits;
    if (request.kind == Request::Kind::kWrite) {
      p.wr(addr.bank, addr.column, request.data, 4.0 * t.t_ck_ns);
    } else {
      p.rd(addr.bank, addr.column, 4.0 * t.t_ck_ns);
    }
  } else {
    if (open_page && open_rows_[addr.bank] >= 0) {
      // Row conflict: close the stale row first.
      p.pre(addr.bank, std::max(t.t_rtp_ns, t.t_wr_ns));
    }
    p.act(addr.bank, addr.row);
    ++stats_.activates;
    if (open_page) ++stats_.row_misses;
    if (request.kind == Request::Kind::kWrite) {
      p.wr(addr.bank, addr.column, request.data, trcd);
      if (!open_page) p.pre(addr.bank, std::max(t.t_ras_ns - trcd, t.t_wr_ns));
    } else {
      p.rd(addr.bank, addr.column, trcd);
      if (!open_page) p.pre(addr.bank, std::max(t.t_ras_ns - trcd, t.t_rtp_ns));
    }
  }
  auto result = session_.execute(p);
  if (!result.status.ok()) {
    return std::move(result.status)
        .error()
        .with_bank_row(static_cast<std::int32_t>(addr.bank), addr.row)
        .with_context("memory controller access");
  }
  if (open_page) open_rows_[addr.bank] = static_cast<std::int64_t>(addr.row);

  if (request.kind == Request::Kind::kWrite) {
    ++stats_.writes;
    if (options_.use_secded) {
      std::uint64_t word = 0;
      std::memcpy(&word, request.data.data(), sizeof(word));
      ecc_store_[ecc_key(addr)] = ecc::encode(word).check;
    }
  } else {
    ++stats_.reads;
    if (result.reads.size() != 1) {
      return Error{common::ErrorCode::kReadUnderrun, "missing read data"}
          .with_bank_row(static_cast<std::int32_t>(addr.bank), addr.row)
          .with_op("RD");
    }
    response.data = result.reads.front();
    if (options_.use_secded) {
      const auto it = ecc_store_.find(ecc_key(addr));
      if (it != ecc_store_.end()) {
        ecc::Codeword cw;
        std::memcpy(&cw.data, response.data.data(), sizeof(cw.data));
        cw.check = it->second;
        const auto decoded = ecc::decode(cw);
        switch (decoded.state) {
          case ecc::DecodeState::kClean:
            break;
          case ecc::DecodeState::kCorrectedData:
          case ecc::DecodeState::kCorrectedCheck:
            response.corrected = true;
            ++stats_.ecc_corrections;
            std::memcpy(response.data.data(), &decoded.data,
                        sizeof(decoded.data));
            break;
          case ecc::DecodeState::kUncorrectable:
            response.uncorrectable = true;
            ++stats_.ecc_uncorrectable;
            break;
        }
      }
    }
  }

  // Apply the policy's preventive refreshes after the access completes
  // (targeted row touches need precharged banks).
  if (!action.refresh_neighbors_of.empty()) {
    if (auto st = close_all_rows(); !st.ok())
      return std::move(st).error().with_context("preventive refresh");
  }
  for (const std::uint32_t victim_of : action.refresh_neighbors_of) {
    if (auto st = refresh_neighbors_of(addr.bank, victim_of); !st.ok())
      return std::move(st).error().with_context("preventive refresh");
  }

  response.completed_at_ns = session_.clock_ns();
  return response;
}

common::Status MemoryController::idle_ms(double ms) {
  // Advance in tREFI-sized chunks so refresh stays on schedule.
  double remaining = common::ms_to_ns(ms);
  const double chunk = session_.timing().t_refi_ns;
  while (remaining > 0.0) {
    const double step = std::min(remaining, chunk);
    softmc::Program p(session_.timing());
    p.wait_ns(step);
    if (auto r = session_.execute(p); !r.status.ok()) return r.status;
    remaining -= step;
    if (auto st = catch_up_refresh(); !st.ok()) return st;
  }
  return Status::ok_status();
}

}  // namespace vppstudy::memctrl
