// REAPER-style retention profiling [Patel+ ISCA'17], applied the way
// Obsv. 15 suggests: find the small fraction of rows that cannot hold the
// nominal refresh window at a reduced VPP, so the controller can refresh
// *only those* at 2x rate instead of the whole rank.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "dram/types.hpp"
#include "softmc/session.hpp"

namespace vppstudy::memctrl {

struct RetentionProfile {
  /// Rows that flipped within the profiling window at the profiled VPP.
  std::vector<dram::Address> weak_rows;
  std::uint32_t rows_scanned = 0;

  [[nodiscard]] double weak_fraction() const noexcept {
    return rows_scanned == 0
               ? 0.0
               : static_cast<double>(weak_rows.size()) / rows_scanned;
  }
};

struct ProfilerOptions {
  std::uint32_t bank = 0;
  std::uint32_t first_row = 8;
  std::uint32_t row_count = 128;
  /// Profile with guardband: test at twice the target window so marginal
  /// rows are caught before they fail in the field (REAPER's core idea).
  double target_trefw_ms = 64.0;
  double guardband_factor = 2.0;
};

/// Scan rows at the session's current VPP/temperature; rows showing any flip
/// within target*guardband are flagged for 2x refresh.
[[nodiscard]] common::Expected<RetentionProfile> profile_retention(
    softmc::Session& session, const ProfilerOptions& options);

}  // namespace vppstudy::memctrl
