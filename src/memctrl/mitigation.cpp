#include "memctrl/mitigation.hpp"

#include <algorithm>

namespace vppstudy::memctrl {

// --- PARA --------------------------------------------------------------------

Para::Para(double probability, std::uint64_t seed)
    : probability_(probability), rng_(seed), seed_(seed) {}

std::string Para::name() const {
  return "para(p=" + std::to_string(probability_) + ")";
}

MitigationAction Para::on_activate(std::uint32_t, std::uint32_t row) {
  MitigationAction action;
  if (rng_.uniform() < probability_) {
    action.refresh_neighbors_of.push_back(row);
    ++mitigations_;
  }
  return action;
}

void Para::reset() { rng_ = common::Xoshiro256(seed_); }

// --- Graphene ----------------------------------------------------------------

Graphene::Graphene(std::uint32_t banks, std::uint32_t table_entries,
                   std::uint64_t threshold)
    : table_entries_(table_entries), threshold_(threshold), tables_(banks) {}

std::string Graphene::name() const {
  return "graphene(T=" + std::to_string(threshold_) + ")";
}

MitigationAction Graphene::on_activate(std::uint32_t bank,
                                       std::uint32_t row) {
  MitigationAction action;
  if (bank >= tables_.size()) return action;
  auto& table = tables_[bank];

  Entry* entry = nullptr;
  for (auto& e : table) {
    if (e.row == row) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    if (table.size() < table_entries_) {
      table.push_back({row, 0});
      entry = &table.back();
    } else {
      // Misra-Gries: decrement the minimum; displace it if it hits zero.
      auto min_it = std::min_element(
          table.begin(), table.end(),
          [](const Entry& a, const Entry& b) { return a.count < b.count; });
      if (min_it->count == 0) {
        *min_it = {row, 0};
        entry = &*min_it;
      } else {
        for (auto& e : table) --e.count;
        return action;
      }
    }
  }
  if (++entry->count >= threshold_) {
    entry->count = 0;
    action.refresh_neighbors_of.push_back(row);
    ++mitigations_;
  }
  return action;
}

void Graphene::reset() {
  for (auto& t : tables_) t.clear();
}

// --- BlockHammer-lite ----------------------------------------------------------

BlockHammerLite::BlockHammerLite(std::uint32_t banks,
                                 std::uint64_t blacklist_threshold,
                                 double throttle_ns)
    : threshold_(blacklist_threshold), throttle_ns_(throttle_ns),
      tables_(banks) {}

std::string BlockHammerLite::name() const {
  return "blockhammer(T=" + std::to_string(threshold_) + ")";
}

MitigationAction BlockHammerLite::on_activate(std::uint32_t bank,
                                              std::uint32_t row) {
  MitigationAction action;
  if (bank >= tables_.size()) return action;
  auto& table = tables_[bank];
  Entry* entry = nullptr;
  for (auto& e : table) {
    if (e.row == row) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    if (table.size() < 16) {
      table.push_back({row, 0});
      entry = &table.back();
    } else {
      auto min_it = std::min_element(
          table.begin(), table.end(),
          [](const Entry& a, const Entry& b) { return a.count < b.count; });
      const std::uint64_t dec = std::min<std::uint64_t>(min_it->count, 1);
      for (auto& e : table) e.count -= std::min(e.count, dec);
      if (min_it->count == 0) {
        *min_it = {row, 0};
        entry = &*min_it;
      } else {
        return action;
      }
    }
  }
  ++entry->count;
  if (entry->count >= threshold_) {
    // Blacklisted: throttle the requester and refresh the victims, then let
    // the row earn its way back.
    action.throttle_ns = throttle_ns_;
    action.refresh_neighbors_of.push_back(row);
    entry->count = threshold_ / 2;
    ++mitigations_;
    ++throttled_;
  }
  return action;
}

void BlockHammerLite::reset() {
  for (auto& t : tables_) t.clear();
  throttled_ = 0;
}

}  // namespace vppstudy::memctrl
