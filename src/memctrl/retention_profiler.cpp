#include "memctrl/retention_profiler.hpp"

#include "dram/data_pattern.hpp"
#include "harness/experiment.hpp"

namespace vppstudy::memctrl {

using common::Error;

common::Expected<RetentionProfile> profile_retention(
    softmc::Session& session, const ProfilerOptions& options) {
  RetentionProfile profile;
  const double window_ms =
      options.target_trefw_ms * options.guardband_factor;

  // Profile with the strongest canonical pattern pair: both polarities are
  // exercised so weak cells cannot hide behind a favorable stored value.
  for (std::uint32_t row = options.first_row;
       row < options.first_row + options.row_count; ++row) {
    if (row >= session.module().profile().rows_per_bank) break;
    ++profile.rows_scanned;
    bool weak = false;
    for (const auto pattern :
         {dram::DataPattern::kCheckerAA, dram::DataPattern::kChecker55}) {
      const auto image = dram::pattern_row(pattern, dram::kBytesPerRow);
      if (auto st = session.init_row(options.bank, row, image); !st.ok())
        return std::move(st).error().with_context("retention profiler init");
      if (auto st = session.wait_ms(window_ms); !st.ok())
        return std::move(st).error().with_context("retention profiler wait");
      auto observed =
          session.read_row(options.bank, row, harness::kSafeReadTrcdNs);
      if (!observed) {
        return std::move(observed).error().with_context(
            "retention profiler readback");
      }
      if (harness::count_bit_flips(image, *observed) > 0) {
        weak = true;
        break;
      }
    }
    if (weak) {
      profile.weak_rows.push_back({options.bank, row, 0});
    }
  }
  return profile;
}

}  // namespace vppstudy::memctrl
