// A closed-page DDR4 memory controller on top of the SoftMC session: request
// interface, nominal-timing command generation, distributed refresh, optional
// rank-level SECDED, pluggable RowHammer mitigation, and selective 2x refresh
// for retention-weak rows (the Obsv. 15 countermeasure).
//
// This is the "system" view of the paper's findings: the characterization
// harness violates timing on purpose; the controller is the component that
// must *honor* timing while surviving a hammering tenant.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "ecc/secded.hpp"
#include "memctrl/mitigation.hpp"
#include "softmc/session.hpp"

namespace vppstudy::memctrl {

struct Request {
  enum class Kind { kRead, kWrite };
  Kind kind = Kind::kRead;
  dram::Address address;  ///< column selects one 64-bit word
  std::array<std::uint8_t, dram::kBytesPerColumn> data{};  ///< for writes
};

struct Response {
  std::array<std::uint8_t, dram::kBytesPerColumn> data{};
  bool corrected = false;      ///< SECDED repaired a single-bit error
  bool uncorrectable = false;  ///< SECDED detected >= 2 flips in the word
  double completed_at_ns = 0.0;
};

struct ControllerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t activates = 0;
  std::uint64_t row_hits = 0;    ///< open-page: served from the open row
  std::uint64_t row_misses = 0;  ///< open-page: needed PRE+ACT
  std::uint64_t refresh_commands = 0;
  std::uint64_t mitigative_refreshes = 0;  ///< preventive neighbor refreshes
  std::uint64_t selective_refreshes = 0;   ///< extra 2x-rate row refreshes
  std::uint64_t ecc_corrections = 0;
  std::uint64_t ecc_uncorrectable = 0;
  double throttled_ns = 0.0;
};

enum class PagePolicy {
  kClosedPage,  ///< PRE after every access (the default; attack-hostile)
  kOpenPage,    ///< keep the row open for locality (row hits skip ACT)
};

struct ControllerOptions {
  bool auto_refresh = true;        ///< REF every tREFI while time advances
  bool use_secded = true;          ///< rank-level SECDED(72,64)
  double trcd_override_ns = -1.0;  ///< >0: use a longer tRCD (Obsv. 7 fix)
  PagePolicy page_policy = PagePolicy::kClosedPage;
  /// Rows refreshed at 2x rate via targeted ACT+PRE (Obsv. 15's selective
  /// refresh); populated from a retention profile.
  std::vector<dram::Address> fast_refresh_rows;
};

class MemoryController {
 public:
  MemoryController(softmc::Session& session, ControllerOptions options,
                   std::unique_ptr<MitigationPolicy> policy);

  /// Execute one request with nominal (or overridden) timing; advances the
  /// session clock and interleaves any due refresh work first.
  [[nodiscard]] common::Expected<Response> execute(const Request& request);

  /// Let wall-clock pass with the bus idle (refresh keeps running).
  [[nodiscard]] common::Status idle_ms(double ms);

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] MitigationPolicy& policy() noexcept { return *policy_; }

 private:
  [[nodiscard]] common::Status catch_up_refresh();
  [[nodiscard]] common::Status refresh_neighbors_of(std::uint32_t bank,
                                                    std::uint32_t row);
  /// Targeted restore of one row (ACT + tRAS + PRE).
  [[nodiscard]] common::Status touch_row(std::uint32_t bank,
                                         std::uint32_t row);
  /// Open-page: close every open row (needed before REF or targeted work).
  [[nodiscard]] common::Status close_all_rows();

  softmc::Session& session_;
  ControllerOptions options_;
  std::unique_ptr<MitigationPolicy> policy_;
  ControllerStats stats_;
  double next_refresh_ns_;
  double next_selective_ns_;
  /// Open-page bookkeeping: logical row currently open per bank, or -1.
  std::vector<std::int64_t> open_rows_;
  /// Rank-level ECC store: the "ninth chip" holding one check byte per
  /// 64-bit word, keyed by (bank, row, column).
  std::unordered_map<std::uint64_t, std::uint8_t> ecc_store_;
};

}  // namespace vppstudy::memctrl
