#include "common/thread_pool.hpp"

#include <algorithm>

namespace vppstudy::common {

namespace {

// Identifies the pool (and deque) a worker thread belongs to, so nested
// submit() calls from inside a task land on the submitter's own deque (the
// back, LIFO) instead of round-robin. Plain thread-locals: a thread only ever
// belongs to one pool.
thread_local const ThreadPool* t_pool = nullptr;
thread_local std::size_t t_worker = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  deques_.resize(workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

unsigned ThreadPool::resolve_jobs(int jobs) noexcept {
  if (jobs > 0) return static_cast<unsigned>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t ThreadPool::slot_of_current_thread() const noexcept {
  return t_pool == this ? t_worker + 1 : 0;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (t_pool == this) {
      deques_[t_worker].tasks.push_back(std::move(task));
    } else {
      deques_[next_deque_].tasks.push_back(std::move(task));
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
  }
  wake_.notify_one();
}

bool ThreadPool::pop_or_steal(std::size_t self, std::function<void()>& out) {
  if (!deques_[self].tasks.empty()) {
    out = std::move(deques_[self].tasks.back());
    deques_[self].tasks.pop_back();
    return true;
  }
  std::size_t victim = self;
  std::size_t victim_size = 0;
  for (std::size_t i = 0; i < deques_.size(); ++i) {
    if (i != self && deques_[i].tasks.size() > victim_size) {
      victim = i;
      victim_size = deques_[i].tasks.size();
    }
  }
  if (victim_size == 0) return false;
  out = std::move(deques_[victim].tasks.front());
  deques_[victim].tasks.pop_front();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_pool = this;
  t_worker = self;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        if (stop_) return true;
        return std::any_of(deques_.begin(), deques_.end(),
                           [](const auto& d) { return !d.tasks.empty(); });
      });
      if (!pop_or_steal(self, task)) {
        if (stop_) return;
        continue;
      }
    }
    task();
  }
}

}  // namespace vppstudy::common
