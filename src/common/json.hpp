// JSON support for the bench/tooling layer: a minimal streaming writer
// (BENCH_perf.json snapshots, per-sweep instrumentation sidecars, trace
// dumps) and a small recursive-descent parser (JsonValue DOM) so the same
// documents can be read back -- trace-driven replay loads the dumps the
// writer produced. Parse failures surface as typed kParseError results.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/expected.hpp"

namespace vppstudy::common {

/// Escape a string for inclusion in a JSON document (without quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Splice a pre-rendered JSON value (e.g. another writer's str()) in as
  /// one element. The caller guarantees `json` is a complete, valid JSON
  /// value; the writer only handles the surrounding comma placement.
  JsonWriter& raw(std::string_view json);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// Render the document (valid once all containers are closed).
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  /// Write the document to a file; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once the first element was emitted.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

// --- Parsing -----------------------------------------------------------------

/// A parsed JSON document node. Numbers are kept as doubles (the documents
/// this layer reads -- trace dumps, instrumentation sidecars -- stay well
/// inside the 2^53 integer-exact range); object member order is preserved.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; asserted in debug builds, callers check kind() or use
  /// the *_or() forms below.
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return members_;
  }

  /// Object member lookup (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Leaf lookups with fallback: `doc.number_or("vpp_v", 2.5)`.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] std::uint64_t uint_or(std::string_view key,
                                      std::uint64_t fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  // --- construction (used by the parser and tests) ---------------------------
  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse a complete JSON document. Trailing non-whitespace, unterminated
/// containers, and malformed literals fail with ErrorCode::kParseError and a
/// byte offset in the message.
[[nodiscard]] Result<JsonValue> parse_json(std::string_view text);

/// Read and parse a JSON file; kParseError on unreadable or malformed input.
[[nodiscard]] Result<JsonValue> parse_json_file(const std::string& path);

}  // namespace vppstudy::common
