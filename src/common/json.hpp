// Minimal streaming JSON writer: the machine-readable side channel of the
// bench/tooling layer (BENCH_perf.json snapshots, per-sweep instrumentation
// sidecars). No DOM, no parsing -- callers emit objects/arrays in order and
// the writer handles commas, nesting, and string escaping.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vppstudy::common {

/// Escape a string for inclusion in a JSON document (without quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// Render the document (valid once all containers are closed).
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  /// Write the document to a file; returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  void comma_if_needed();

  std::string out_;
  /// One entry per open container: true once the first element was emitted.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace vppstudy::common
