#include "common/socket.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vppstudy::common {

namespace {

Error io_error(const char* what) {
  return Error{ErrorCode::kIoError,
               std::string(what) + ": " + std::strerror(errno)};
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::send_all(const void* data, std::size_t len) const {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as a
    // typed kIoError on this connection, not SIGPIPE the whole daemon.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

Status Socket::recv_exact(void* data, std::size_t len, bool* clean_eof) const {
  if (clean_eof != nullptr) *clean_eof = false;
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::ok_status();
      }
      return Error{ErrorCode::kIoError, "connection closed mid-message"};
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

void Socket::shutdown_both() const noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ServerSocket> ServerSocket::listen_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return io_error("socket");

  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return io_error("bind");
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) return io_error("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return io_error("getsockname");
  }
  return ServerSocket(std::move(sock), ntohs(bound.sin_port));
}

Result<Socket> ServerSocket::accept() const {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return io_error("accept");
  }
}

Result<Socket> connect_loopback(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return io_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return io_error("connect");
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace vppstudy::common
