// Tiny leveled logger for the harness and benches. Defaults to warnings only
// so test output stays clean; benches raise verbosity when useful.
#pragma once

#include <sstream>
#include <string>

namespace vppstudy::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace vppstudy::common
