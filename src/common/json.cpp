#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

namespace vppstudy::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!has_element_.empty()) has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!has_element_.empty()) has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << out_ << '\n';
  return static_cast<bool>(file);
}

// --- JsonValue ---------------------------------------------------------------

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::uint64_t JsonValue::uint_or(std::string_view key,
                                 std::uint64_t fallback) const noexcept {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number() || v->as_number() < 0.0) return fallback;
  return static_cast<std::uint64_t>(v->as_number());
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::string(fallback);
}

// --- parser ------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse_document() {
    VPP_ASSIGN_OR_RETURN(JsonValue doc, parse_value(0));
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return doc;
  }

 private:
  /// Containers deeper than this are rejected (a hostile dump must not be
  /// able to overflow the parser's stack).
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] Error fail(std::string what) const {
    return Error{ErrorCode::kParseError,
                 std::move(what) + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        VPP_ASSIGN_OR_RETURN(std::string s, parse_string());
        return JsonValue::make_string(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::make_bool(true);
        }
        return fail("malformed literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::make_bool(false);
        }
        return fail("malformed literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::make_null();
        }
        return fail("malformed literal");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      VPP_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      VPP_ASSIGN_OR_RETURN(JsonValue value, parse_value(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      VPP_ASSIGN_OR_RETURN(JsonValue value, parse_value(depth + 1));
      items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("malformed \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (our writer only emits \u for
            // control characters; surrogate pairs are out of scope).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail("malformed number '" + token + "'");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

Result<JsonValue> parse_json_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Error{ErrorCode::kParseError, "cannot read JSON file " + path};
  }
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return parse_json(text).transform_error([&path](Error&& e) {
    return std::move(e).with_context("while parsing " + path);
  });
}

}  // namespace vppstudy::common
