#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace vppstudy::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!has_element_.empty()) has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!has_element_.empty()) has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << out_ << '\n';
  return static_cast<bool>(file);
}

}  // namespace vppstudy::common
