#include "common/rng.hpp"

#include <cmath>

namespace vppstudy::common {

double inverse_normal_cdf(double p) noexcept {
  // Peter Acklam's algorithm. Clamp away from {0,1} so callers can feed
  // arbitrary hashed uniforms without producing infinities.
  constexpr double kEps = 1e-300;
  if (p < kEps) p = kEps;
  if (p > 1.0 - 1e-16) p = 1.0 - 1e-16;

  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};

  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method sharpens the approximation.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_at(std::initializer_list<std::uint64_t> words) noexcept {
  return inverse_normal_cdf(to_unit_double(hash_key(words)));
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Seed the four state words with SplitMix64, per the xoshiro authors.
  for (auto& s : state_) {
    seed = mix64(seed);
    s = seed;
  }
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept { return to_unit_double(next()); }

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() noexcept { return inverse_normal_cdf(uniform()); }

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection-free (slightly biased for astronomically large bounds, which is
  // irrelevant for simulation index picking).
  return next() % bound;
}

}  // namespace vppstudy::common
