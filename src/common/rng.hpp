// Counter-based deterministic random utilities.
//
// Every stochastic quantity in the device model (per-cell weakness, retention
// time, threshold voltage, ...) is synthesized on demand from a counter-based
// hash keyed on (seed, coordinates, parameter id). This gives the defining
// property of real-chip characterization data -- bit flips occur at
// *consistently predictable locations* across repeated tests -- without
// storing per-cell state for billions of cells.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

namespace vppstudy::common {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Initial accumulator state of hash_key (pi fractional bits).
inline constexpr std::uint64_t kHashInit = 0x243f6a8885a308d3ULL;

/// Fold one key word into a running hash accumulator. hash_key is exactly a
/// left fold of this over kHashInit, so a fixed key prefix can be hashed once
/// and reused across a walk that only varies the trailing words (the batched
/// word-walk kernels in common/simd.hpp depend on this factorization).
[[nodiscard]] constexpr std::uint64_t
hash_accumulate(std::uint64_t h, std::uint64_t w) noexcept {
  return mix64(h ^ mix64(w));
}

/// Hash an arbitrary-length key of 64-bit words into one 64-bit value.
[[nodiscard]] constexpr std::uint64_t
hash_key(std::initializer_list<std::uint64_t> words) noexcept {
  std::uint64_t h = kHashInit;
  for (std::uint64_t w : words) {
    h = hash_accumulate(h, w);
  }
  return h;
}

/// Uniform double in [0, 1) from a 64-bit hash value.
[[nodiscard]] constexpr double to_unit_double(std::uint64_t h) noexcept {
  // Use the top 53 bits for a dyadic rational in [0,1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform double in [0, 1) for a hashed key.
[[nodiscard]] constexpr double
uniform_at(std::initializer_list<std::uint64_t> words) noexcept {
  return to_unit_double(hash_key(words));
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over the full open interval).
[[nodiscard]] double inverse_normal_cdf(double p) noexcept;

/// Standard normal CDF, accurate to ~1e-12 (via std::erfc).
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Standard normal draw for a hashed key.
[[nodiscard]] double normal_at(std::initializer_list<std::uint64_t> words) noexcept;

/// A small, fast sequential PRNG (xoshiro256**) for Monte-Carlo loops where a
/// stream (rather than a pure function of coordinates) is the right tool.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;
  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Standard normal via inverse-CDF of a uniform draw.
  [[nodiscard]] double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Uniform integer in [0, bound).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vppstudy::common
