#include "common/error.hpp"

#include <utility>

namespace vppstudy::common {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "kUnknown";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kVppOutOfRange: return "kVppOutOfRange";
    case ErrorCode::kModuleUnresponsive: return "kModuleUnresponsive";
    case ErrorCode::kThermalTimeout: return "kThermalTimeout";
    case ErrorCode::kTimingViolationFatal: return "kTimingViolationFatal";
    case ErrorCode::kBadRowImage: return "kBadRowImage";
    case ErrorCode::kReadUnderrun: return "kReadUnderrun";
    case ErrorCode::kDeviceProtocol: return "kDeviceProtocol";
    case ErrorCode::kSolverDiverged: return "kSolverDiverged";
    case ErrorCode::kParseError: return "kParseError";
    case ErrorCode::kNoUsableLevels: return "kNoUsableLevels";
    case ErrorCode::kEmptySample: return "kEmptySample";
    case ErrorCode::kIoError: return "kIoError";
    case ErrorCode::kFrameTooLarge: return "kFrameTooLarge";
    case ErrorCode::kUnknownRequest: return "kUnknownRequest";
    case ErrorCode::kQueueFull: return "kQueueFull";
    case ErrorCode::kQuotaExceeded: return "kQuotaExceeded";
    case ErrorCode::kCancelled: return "kCancelled";
    case ErrorCode::kLeaseExpired: return "kLeaseExpired";
  }
  return "kUnknown";
}

ErrorCode error_code_from_name(std::string_view name) noexcept {
  constexpr ErrorCode kAll[] = {
      ErrorCode::kUnknown,        ErrorCode::kInvalidArgument,
      ErrorCode::kVppOutOfRange,  ErrorCode::kModuleUnresponsive,
      ErrorCode::kThermalTimeout, ErrorCode::kTimingViolationFatal,
      ErrorCode::kBadRowImage,    ErrorCode::kReadUnderrun,
      ErrorCode::kDeviceProtocol, ErrorCode::kSolverDiverged,
      ErrorCode::kParseError,     ErrorCode::kNoUsableLevels,
      ErrorCode::kEmptySample,    ErrorCode::kIoError,
      ErrorCode::kFrameTooLarge,  ErrorCode::kUnknownRequest,
      ErrorCode::kQueueFull,      ErrorCode::kQuotaExceeded,
      ErrorCode::kCancelled,      ErrorCode::kLeaseExpired,
  };
  for (const ErrorCode code : kAll) {
    if (error_code_name(code) == name) return code;
  }
  return ErrorCode::kUnknown;
}

Error&& Error::with_context(std::string_view note) && {
  if (!note.empty()) {
    if (context.notes.empty()) {
      context.notes = note;
    } else {
      // Outermost first: the newest note is the caller furthest from the
      // failure, so it leads the chain.
      context.notes = std::string(note) + " <- " + context.notes;
    }
  }
  return std::move(*this);
}

Error Error::with_context(std::string_view note) const& {
  Error copy = *this;
  return std::move(copy).with_context(note);
}

Error&& Error::with_module(std::string_view name) && {
  if (context.module.empty()) context.module = name;
  return std::move(*this);
}

Error&& Error::with_op(std::string_view op) && {
  if (context.op.empty()) context.op = op;
  return std::move(*this);
}

Error&& Error::with_bank(std::int32_t bank) && {
  if (context.bank < 0) context.bank = bank;
  return std::move(*this);
}

Error&& Error::with_row(std::int64_t row) && {
  if (context.row < 0) context.row = row;
  return std::move(*this);
}

Error&& Error::with_bank_row(std::int32_t bank, std::int64_t row) && {
  return std::move(std::move(*this).with_bank(bank)).with_row(row);
}

Error&& Error::with_vpp_mv(std::int64_t vpp_mv) && {
  if (context.vpp_mv < 0) context.vpp_mv = vpp_mv;
  return std::move(*this);
}

Error&& Error::with_code(ErrorCode c) && {
  if (code == ErrorCode::kUnknown) code = c;
  return std::move(*this);
}

std::string Error::to_string() const {
  std::string out;
  out.reserve(message.size() + 64);
  out += '[';
  out += error_code_name(code);
  out += "] ";
  out += message;
  if (!context.module.empty() || !context.op.empty() || context.bank >= 0 ||
      context.row >= 0 || context.vpp_mv >= 0) {
    out += " (";
    bool first = true;
    const auto field = [&](std::string_view key, const std::string& value) {
      if (!first) out += ' ';
      first = false;
      out += key;
      out += '=';
      out += value;
    };
    if (!context.module.empty()) field("module", context.module);
    if (!context.op.empty()) field("op", context.op);
    if (context.bank >= 0) field("bank", std::to_string(context.bank));
    if (context.row >= 0) field("row", std::to_string(context.row));
    if (context.vpp_mv >= 0) {
      field("vpp", std::to_string(context.vpp_mv) + "mV");
    }
    out += ')';
  }
  if (!context.notes.empty()) {
    out += " {ctx: ";
    out += context.notes;
    out += '}';
  }
  return out;
}

}  // namespace vppstudy::common
