// Small CSV writer used by the benchmark harness to dump figure series.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace vppstudy::common {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators). Numeric fields are formatted with full double precision.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Begin a new row. Fields are appended with `add`.
  void begin_row();
  /// Complete the in-progress row (begin_row also does this implicitly).
  /// Writers that hand the document to row_count()-based consumers must end
  /// their last row explicitly.
  void end_row();
  void add(std::string_view field);
  void add(double value);
  void add(std::uint64_t value);
  void add(std::int64_t value);

  /// Number of completed data rows (the in-progress row is excluded).
  [[nodiscard]] std::size_t row_count() const noexcept;

  /// Render the full document (header + rows) as a string.
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  void flush_current();

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
  bool row_open_ = false;
};

/// Escape a single CSV field.
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace vppstudy::common
