#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/rng.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VPP_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define VPP_SIMD_HAVE_AVX2 0
#endif

namespace vppstudy::common::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: the AVX2 path below must
// match them bit for bit (asserted by the SimdWordWalk test suite).
// ---------------------------------------------------------------------------

void hash_index_walk_scalar(std::uint64_t prefix, std::uint64_t tag,
                            std::uint64_t index0, std::size_t n,
                            std::uint64_t* out) {
  // hash_accumulate(h, w) = mix64(h ^ mix64(w)); mix64(tag) is index-free,
  // so hoist it: out[i] = mix64(mix64(prefix ^ mix64(index0+i)) ^ mtag).
  const std::uint64_t mtag = mix64(tag);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t inner = mix64(prefix ^ mix64(index0 + i));
    out[i] = mix64(inner ^ mtag);
  }
}

#if VPP_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX2 kernels. AVX2 has no 64-bit mullo, so synthesize it from 32x32->64
// partial products; adds/shifts/xors map 1:1 to the scalar ops, which is what
// makes the lanes bit-exact replicas of mix64.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
mullo64_avx2(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);  // alo * blo (full 64-bit)
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i mix64_avx2(__m256i x) {
  const __m256i c0 = _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL);
  const __m256i c1 = _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL);
  const __m256i c2 = _mm256_set1_epi64x(0x94d049bb133111ebULL);
  x = _mm256_add_epi64(x, c0);
  x = mullo64_avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c1);
  x = mullo64_avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void
hash_index_walk_avx2(std::uint64_t prefix, std::uint64_t tag,
                     std::uint64_t index0, std::size_t n, std::uint64_t* out) {
  const std::uint64_t mtag = mix64(tag);
  const __m256i vprefix = _mm256_set1_epi64x(static_cast<long long>(prefix));
  const __m256i vmtag = _mm256_set1_epi64x(static_cast<long long>(mtag));
  const __m256i step = _mm256_set1_epi64x(4);
  __m256i idx = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(index0)),
      _mm256_set_epi64x(3, 2, 1, 0));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h = mix64_avx2(_mm256_xor_si256(vprefix, mix64_avx2(idx)));
    h = mix64_avx2(_mm256_xor_si256(h, vmtag));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
    idx = _mm256_add_epi64(idx, step);
  }
  if (i < n) hash_index_walk_scalar(prefix, tag, index0 + i, n - i, out + i);
}

#endif  // VPP_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatch. Resolved once on first use; force_impl()/VPP_SIMD override.
// ---------------------------------------------------------------------------

Impl detect_impl() noexcept {
#if VPP_SIMD_HAVE_AVX2
  if (const char* env = std::getenv("VPP_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Impl::kScalar;
    if (std::strcmp(env, "avx2") == 0 && __builtin_cpu_supports("avx2")) {
      return Impl::kAvx2;
    }
  }
  if (__builtin_cpu_supports("avx2")) return Impl::kAvx2;
#endif
  return Impl::kScalar;
}

// kScalar/kAvx2 values double as the atomic payload; -1 means "not resolved".
std::atomic<int> g_impl{-1};

Impl resolved_impl() noexcept {
  int v = g_impl.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(detect_impl());
    g_impl.store(v, std::memory_order_relaxed);
  }
  return static_cast<Impl>(v);
}

}  // namespace

bool avx2_supported() noexcept {
#if VPP_SIMD_HAVE_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Impl active_impl() noexcept { return resolved_impl(); }

const char* active_impl_name() noexcept {
  return active_impl() == Impl::kAvx2 ? "avx2" : "scalar";
}

bool force_impl(std::optional<Impl> impl) noexcept {
  if (!impl.has_value()) {
    g_impl.store(-1, std::memory_order_relaxed);
    return true;
  }
  if (*impl == Impl::kAvx2 && !avx2_supported()) return false;
  g_impl.store(static_cast<int>(*impl), std::memory_order_relaxed);
  return true;
}

void hash_index_walk(std::uint64_t prefix, std::uint64_t tag,
                     std::uint64_t index0, std::size_t n, std::uint64_t* out) {
#if VPP_SIMD_HAVE_AVX2
  if (resolved_impl() == Impl::kAvx2) {
    hash_index_walk_avx2(prefix, tag, index0, n, out);
    return;
  }
#endif
  hash_index_walk_scalar(prefix, tag, index0, n, out);
}

void uniform_index_walk(std::uint64_t prefix, std::uint64_t tag,
                        std::uint64_t index0, std::size_t n, double* out) {
  // Hash in chunks through a stack buffer, then convert. to_unit_double is an
  // exact dyadic map, so conversion order cannot affect values.
  constexpr std::size_t kChunk = 256;
  std::uint64_t buf[kChunk];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = (n - done < kChunk) ? (n - done) : kChunk;
    hash_index_walk(prefix, tag, index0 + done, take, buf);
    for (std::size_t i = 0; i < take; ++i) {
      out[done + i] = to_unit_double(buf[i]);
    }
    done += take;
  }
}

}  // namespace vppstudy::common::simd
