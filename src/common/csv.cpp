#include "common/csv.hpp"

#include <iomanip>

namespace vppstudy::common {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{field};
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::begin_row() {
  flush_current();
  row_open_ = true;
}

void CsvWriter::end_row() { flush_current(); }

void CsvWriter::flush_current() {
  if (row_open_) {
    rows_.push_back(std::move(current_));
    current_.clear();
    row_open_ = false;
  }
}

void CsvWriter::add(std::string_view field) {
  current_.emplace_back(field);
}

void CsvWriter::add(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  current_.push_back(os.str());
}

void CsvWriter::add(std::uint64_t value) {
  current_.push_back(std::to_string(value));
}

void CsvWriter::add(std::int64_t value) {
  current_.push_back(std::to_string(value));
}

std::size_t CsvWriter::row_count() const noexcept { return rows_.size(); }

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  auto all_rows = rows_;
  if (row_open_) all_rows.push_back(current_);
  for (const auto& row : all_rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace vppstudy::common
