// The Result family: Expected<T> (value-or-Error), Status (ok-or-Error), and
// the Result<T> alias unifying both (Result<void> == Status). C++20 has no
// std::expected yet, so this is ours, grown with the monadic helpers
// (and_then / transform / transform_error) and the VPP_RETURN_IF_ERROR /
// VPP_ASSIGN_OR_RETURN macros that let every layer forward the typed
// common::Error (see common/error.hpp) instead of re-wrapping strings.
//
// Used at fallible API boundaries -- e.g. the SoftMC session refuses to talk
// to a module whose VPP rail is below its communication minimum, mirroring
// the paper's VPPmin limitation (section 7).
#pragma once

#include <cassert>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/error.hpp"

namespace vppstudy::common {

template <typename T>
class Expected {
 public:
  using value_type = T;

  // Implicit construction from both value and error keeps call sites terse:
  //   return Error{ErrorCode::kVppOutOfRange, "vpp below vppmin"};
  //   return some_value;
  Expected(T value) : storage_(std::move(value)) {}            // NOLINT
  Expected(Error error) : storage_(std::move(error)) {}        // NOLINT

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!has_value());
    return std::get<Error>(storage_);
  }
  [[nodiscard]] Error&& error() && {
    assert(!has_value());
    return std::get<Error>(std::move(storage_));
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }

  // --- Monadic helpers -------------------------------------------------------
  /// Apply `f : const T& -> Expected<U>` when ok; forward the error intact
  /// otherwise.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> std::invoke_result_t<F, const T&> {
    if (has_value()) return std::forward<F>(f)(value());
    return error();
  }
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) && -> std::invoke_result_t<F, T&&> {
    if (has_value()) return std::forward<F>(f)(std::move(*this).value());
    return std::move(*this).error();
  }

  /// Apply `f : const T& -> U` when ok, wrapping the result.
  template <typename F>
  [[nodiscard]] auto transform(F&& f) const&
      -> Expected<std::invoke_result_t<F, const T&>> {
    if (has_value()) return std::forward<F>(f)(value());
    return error();
  }
  template <typename F>
  [[nodiscard]] auto transform(F&& f) && -> Expected<std::invoke_result_t<F, T&&>> {
    if (has_value()) return std::forward<F>(f)(std::move(*this).value());
    return std::move(*this).error();
  }

  /// Apply `f : Error&& -> Error` to a held error (context chaining):
  ///   return std::move(r).transform_error([](Error&& e) {
  ///     return std::move(e).with_context("phase B");
  ///   });
  template <typename F>
  [[nodiscard]] Expected transform_error(F&& f) && {
    if (has_value()) return std::move(*this);
    return std::forward<F>(f)(std::move(*this).error());
  }

 private:
  std::variant<T, Error> storage_;
};

/// Expected<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] const Error& error() const& {
    assert(!ok_);
    return error_;
  }
  [[nodiscard]] Error&& error() && {
    assert(!ok_);
    return std::move(error_);
  }

  // --- Monadic helpers -------------------------------------------------------
  /// Run `f : () -> Status-or-Expected<U>` when ok; forward the error intact.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> std::invoke_result_t<F> {
    if (ok_) return std::forward<F>(f)();
    return error();
  }
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) && -> std::invoke_result_t<F> {
    if (ok_) return std::forward<F>(f)();
    return std::move(*this).error();
  }

  /// Apply `f : Error&& -> Error` to a held error (context chaining).
  template <typename F>
  [[nodiscard]] Status transform_error(F&& f) && {
    if (ok_) return Status{};
    return std::forward<F>(f)(std::move(*this).error());
  }

 private:
  Error error_{};
  bool ok_ = true;
};

// --- The unified Result alias ------------------------------------------------
namespace detail {
template <typename T>
struct ResultOf {
  using type = Expected<T>;
};
template <>
struct ResultOf<void> {
  using type = Status;
};
}  // namespace detail

/// Result<T> is Expected<T>; Result<> / Result<void> is Status. New code
/// should spell fallible signatures with Result.
template <typename T = void>
using Result = typename detail::ResultOf<T>::type;

}  // namespace vppstudy::common

// --- Propagation macros ------------------------------------------------------
// Forward a failing Status/Expected out of the enclosing function. The
// enclosing function may return either family: a moved Error converts to
// both. The optional _CTX form adds a breadcrumb via with_context().
#define VPP_RETURN_IF_ERROR(expr)                           \
  do {                                                      \
    if (auto vpp_status_ = (expr); !vpp_status_) {          \
      return ::std::move(vpp_status_).error();              \
    }                                                       \
  } while (false)

#define VPP_RETURN_IF_ERROR_CTX(expr, note)                          \
  do {                                                               \
    if (auto vpp_status_ = (expr); !vpp_status_) {                   \
      return ::std::move(vpp_status_).error().with_context((note));  \
    }                                                                \
  } while (false)

#define VPP_RESULT_CONCAT_INNER_(a, b) a##b
#define VPP_RESULT_CONCAT_(a, b) VPP_RESULT_CONCAT_INNER_(a, b)

/// VPP_ASSIGN_OR_RETURN(auto rows, sample_rows(...)); -- declares `rows`
/// from the Expected's value or returns the error to the caller.
#define VPP_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  auto VPP_RESULT_CONCAT_(vpp_result_, __LINE__) = (rexpr);                \
  if (!VPP_RESULT_CONCAT_(vpp_result_, __LINE__)) {                        \
    return ::std::move(VPP_RESULT_CONCAT_(vpp_result_, __LINE__)).error(); \
  }                                                                        \
  lhs = *::std::move(VPP_RESULT_CONCAT_(vpp_result_, __LINE__))
