// A minimal expected/result type (C++20 has no std::expected yet).
//
// Used at fallible API boundaries -- e.g. the SoftMC session refuses to talk
// to a module whose VPP rail is below its communication minimum, mirroring
// the paper's VPPmin limitation (section 7).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace vppstudy::common {

/// Error payload carried by Expected<T>.
struct Error {
  std::string message;
};

template <typename T>
class Expected {
 public:
  using value_type = T;

  // Implicit construction from both value and error keeps call sites terse:
  //   return Error{"vpp below vppmin"};
  //   return some_value;
  Expected(T value) : storage_(std::move(value)) {}            // NOLINT
  Expected(Error error) : storage_(std::move(error)) {}        // NOLINT

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!has_value());
    return std::get<Error>(storage_);
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }

 private:
  std::variant<T, Error> storage_;
};

/// Expected<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] explicit operator bool() const noexcept { return ok_; }
  [[nodiscard]] const Error& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  Error error_{};
  bool ok_ = true;
};

}  // namespace vppstudy::common
