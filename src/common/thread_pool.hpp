// A small work-stealing thread pool for the sweep engine.
//
// Each worker owns a deque: it pushes and pops work at the back (LIFO, cache
// friendly for nested submissions) and takes from the front of the fullest
// other deque when its own runs dry (FIFO stealing, oldest-first). External
// submissions are distributed round-robin across the worker deques. Sweep
// jobs are coarse (a whole (module, VPP level) campaign each), so a single
// pool mutex is cheap and keeps the scheduler trivially race-free.
//
// Determinism contract: the pool schedules *when* tasks run, never *what*
// they compute. Sweep jobs derive every random quantity from their own
// counter-based stream (see core/parallel_study), so any interleaving --
// including the 0-worker inline fallback -- produces identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace vppstudy::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 workers is a valid degenerate pool: submit()
  /// runs the task inline on the calling thread (serial --jobs runs and
  /// debugging without scheduler noise).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for the inline pool).
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedule `fn` and return a future for its result. Exceptions thrown by
  /// the task are captured and rethrown from future::get().
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F&>> submit(F&& fn) {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline fallback; the future still carries exceptions
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Resolve a user-facing --jobs value: 0 or negative means "all hardware
  /// threads" (with a floor of 1 when the runtime cannot tell).
  [[nodiscard]] static unsigned resolve_jobs(int jobs) noexcept;

  /// Map a --jobs value to a worker count for this pool: --jobs 1 runs
  /// inline (0 workers, no scheduler in the loop), anything else resolves
  /// through resolve_jobs.
  [[nodiscard]] static unsigned workers_for_jobs(int jobs) noexcept {
    return jobs == 1 ? 0 : resolve_jobs(jobs);
  }

 private:
  void enqueue(std::function<void()> task);
  /// Pop from own deque's back, else steal from the fullest other deque's
  /// front. Caller must hold mutex_. Returns false when all deques are empty.
  [[nodiscard]] bool pop_or_steal(std::size_t self,
                                  std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::deque<std::function<void()>>> deques_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::size_t next_deque_ = 0;
  bool stop_ = false;
};

}  // namespace vppstudy::common
