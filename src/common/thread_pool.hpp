// A small work-stealing thread pool for the sweep engine.
//
// Each worker owns a deque: it pushes and pops work at the back (LIFO, cache
// friendly for nested submissions) and takes from the front of the fullest
// other deque when its own runs dry (FIFO stealing, oldest-first). External
// submissions are distributed round-robin across the worker deques. Sweep
// jobs are coarse (a whole (module, VPP level) campaign each), so a single
// pool mutex is cheap and keeps the scheduler trivially race-free.
//
// Determinism contract: the pool schedules *when* tasks run, never *what*
// they compute. Sweep jobs derive every random quantity from their own
// counter-based stream (see core/parallel_study), so any interleaving --
// including the 0-worker inline fallback -- produces identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace vppstudy::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads. 0 workers is a valid degenerate pool: submit()
  /// runs the task inline on the calling thread (serial --jobs runs and
  /// debugging without scheduler noise).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for the inline pool).
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedule `fn` and return a future for its result. Exceptions thrown by
  /// the task are captured and rethrown from future::get().
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F&>> submit(F&& fn) {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline fallback; the future still carries exceptions
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Resolve a user-facing --jobs value: 0 or negative means "all hardware
  /// threads" (with a floor of 1 when the runtime cannot tell).
  [[nodiscard]] static unsigned resolve_jobs(int jobs) noexcept;

  /// Map a --jobs value to a worker count for this pool: --jobs 1 runs
  /// inline (0 workers, no scheduler in the loop), anything else resolves
  /// through resolve_jobs.
  [[nodiscard]] static unsigned workers_for_jobs(int jobs) noexcept {
    return jobs == 1 ? 0 : resolve_jobs(jobs);
  }

  /// Storage slot of the calling thread for WorkerLocal lookups: workers of
  /// *this* pool get 1..worker_count(), every other thread (including the
  /// submitting thread of an inline 0-worker pool) gets slot 0.
  [[nodiscard]] std::size_t slot_of_current_thread() const noexcept;

 private:
  void enqueue(std::function<void()> task);
  /// Pop from own deque's back, else steal from the fullest other deque's
  /// front. Caller must hold mutex_. Returns false when all deques are empty.
  [[nodiscard]] bool pop_or_steal(std::size_t self,
                                  std::function<void()>& out);
  void worker_loop(std::size_t self);

  /// Each worker's deque on its own cache line: the deques are mutated by
  /// different threads on every push/pop, and adjacent std::deque headers
  /// would otherwise share lines and ping-pong between cores.
  struct alignas(64) WorkerQueue {
    std::deque<std::function<void()>> tasks;
  };

  std::vector<WorkerQueue> deques_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::size_t next_deque_ = 0;
  bool stop_ = false;
};

/// Per-worker storage for a pool: one default-constructed T per worker slot,
/// plus slot 0 for non-worker threads (the submitting thread of an inline
/// pool, or the coordinator). Tasks call local(pool) to get the slot of the
/// thread they happen to run on; because a slot is only ever touched by its
/// owning thread, no synchronization is needed, and the values persist
/// across submissions -- this is how core/parallel_study reuses one rig
/// Session per (worker, module) across shard jobs.
///
/// Lifetime rule: construct the WorkerLocal BEFORE the pool it serves (so it
/// outlives any task the pool might still drain during its destructor), and
/// size it with the same worker count the pool was built with. Slots are
/// alignas(64)-padded: neighboring workers' values never share a cache line.
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(unsigned workers) : slots_(workers + 1) {}

  WorkerLocal(const WorkerLocal&) = delete;
  WorkerLocal& operator=(const WorkerLocal&) = delete;

  /// The calling thread's slot value with respect to `pool`.
  [[nodiscard]] T& local(const ThreadPool& pool) noexcept {
    return slots_[pool.slot_of_current_thread()].value;
  }
  /// Number of slots (workers + 1).
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  /// Direct slot access for post-run aggregation on the coordinator.
  [[nodiscard]] T& slot(std::size_t i) noexcept { return slots_[i].value; }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

}  // namespace vppstudy::common
