// Minimal RAII TCP sockets for the vppd daemon and its clients.
//
// Loopback-only by design: the daemon serves the deterministic
// characterization cache to local tooling, so the listener binds
// 127.0.0.1 and never a routable interface. All failures surface as typed
// kIoError Results; partial reads/writes are retried until complete
// (send_all / recv_exact), and EOF mid-message is an error while EOF at a
// message boundary is a clean close (recv_exact's `clean_eof` out-param).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/expected.hpp"

namespace vppstudy::common {

/// Move-only owner of one connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Write the whole buffer (retrying short writes; SIGPIPE suppressed).
  [[nodiscard]] Status send_all(const void* data, std::size_t len) const;

  /// Read exactly `len` bytes. EOF before the first byte sets *clean_eof
  /// (when non-null) and returns ok with nothing read -- the caller decides
  /// whether a close at this boundary is clean; EOF mid-buffer is kIoError.
  [[nodiscard]] Status recv_exact(void* data, std::size_t len,
                                  bool* clean_eof = nullptr) const;

  /// Disallow further reads and writes (wakes a thread blocked in recv).
  void shutdown_both() const noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. `port = 0` picks an ephemeral port;
/// port() reports the actual one.
class ServerSocket {
 public:
  [[nodiscard]] static Result<ServerSocket> listen_loopback(
      std::uint16_t port);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block for the next connection; kIoError once the socket is closed
  /// (the accept loop's shutdown path).
  [[nodiscard]] Result<Socket> accept() const;

  void close() noexcept { socket_.close(); }
  /// Wake a thread blocked in accept() without destroying the object.
  void shutdown() const noexcept { socket_.shutdown_both(); }

 private:
  ServerSocket(Socket socket, std::uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connect to a loopback port.
[[nodiscard]] Result<Socket> connect_loopback(std::uint16_t port);

}  // namespace vppstudy::common
