// Unit conventions and shared physical constants.
//
// Scalar physical quantities are plain doubles with an explicit unit suffix
// in the variable name (`vpp_v`, `t_ns`, `temp_c`). Helper constants below
// keep magic numbers out of the physics code.
#pragma once

namespace vppstudy::common {

// --- Time conversions (canonical simulation unit: nanoseconds) -------------
inline constexpr double kNsPerUs = 1e3;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerS = 1e9;

[[nodiscard]] constexpr double ms_to_ns(double ms) noexcept { return ms * kNsPerMs; }
[[nodiscard]] constexpr double s_to_ns(double s) noexcept { return s * kNsPerS; }
[[nodiscard]] constexpr double ns_to_ms(double ns) noexcept { return ns / kNsPerMs; }
[[nodiscard]] constexpr double ns_to_s(double ns) noexcept { return ns / kNsPerS; }

// --- DDR4 voltage rails (JESD79-4) ------------------------------------------
/// Nominal wordline (pumped) voltage.
inline constexpr double kNominalVppV = 2.5;
/// Nominal core supply voltage.
inline constexpr double kNominalVddV = 1.2;

// --- Study temperature setpoints (section 4.1) ------------------------------
/// RowHammer and tRCD characterization temperature.
inline constexpr double kHammerTestTempC = 50.0;
/// Retention characterization temperature (upper bound of normal range).
inline constexpr double kRetentionTestTempC = 80.0;

// --- DDR4 nominal timing anchor points used throughout the paper ------------
/// Nominal activation latency the study compares against (section 4.3).
inline constexpr double kNominalTrcdNs = 13.5;
/// SoftMC command-slot granularity: one command every 1.5 ns (section 4.3).
inline constexpr double kCommandSlotNs = 1.5;
/// Nominal refresh window (JESD79-4: 64 ms below 85C).
inline constexpr double kNominalTrefwMs = 64.0;

}  // namespace vppstudy::common
