// Typed error for the whole stack. Every fallible layer (softmc rig, dram
// device model, harness, core sweep engine) reports failures as an Error:
// a machine-readable ErrorCode plus structured context (module name,
// bank/row, VPP in millivolts, command kind) and a breadcrumb chain added
// via with_context() as the error propagates upward. By the time a failure
// surfaces in core::parallel_study we still know which module, VPP level,
// and command produced it -- the paper's methodology depends on the host
// software being able to attribute every failure (sections 4.1-4.3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vppstudy::common {

/// Machine-readable failure taxonomy. Codes survive every re-wrap: layers
/// add context, they never replace the code (except kUnknown, which any
/// layer may refine).
enum class ErrorCode : std::uint8_t {
  kUnknown = 0,
  /// Caller passed an out-of-range bank/row/column or malformed argument.
  kInvalidArgument,
  /// Requested VPP is outside the bench supply's output range (section 4.1).
  kVppOutOfRange,
  /// The module stopped communicating -- VPP below VPPmin (section 7).
  kModuleUnresponsive,
  /// The thermal chamber failed to settle at the setpoint.
  kThermalTimeout,
  /// A timing violation that the device cannot survive (reserved for a
  /// future strict-dispatch mode; deliberate violations are observations,
  /// not errors).
  kTimingViolationFatal,
  /// A row image of the wrong size was handed to init_row.
  kBadRowImage,
  /// A row/column readout returned fewer bursts than the program issued.
  kReadUnderrun,
  /// A command sequence the DDR4 state machine rejects (RD with no open
  /// row, REF with open banks, hammer on an open bank, ...).
  kDeviceProtocol,
  /// The circuit solver diverged or hit a singular matrix.
  kSolverDiverged,
  /// A SoftMC program text failed to parse.
  kParseError,
  /// A sweep had no VPP level at or above the module's VPPmin.
  kNoUsableLevels,
  /// Row sampling produced an empty set.
  kEmptySample,
  /// A socket/file operation failed (connect, accept, short read/write).
  kIoError,
  /// A protocol frame declared a length above the server's cap, or a frame
  /// ended mid-payload (src/server/protocol.hpp).
  kFrameTooLarge,
  /// A well-formed request named a type the daemon does not serve.
  kUnknownRequest,
  /// The daemon's bounded job queue is full (backpressure, try again later).
  kQueueFull,
  /// One client exceeded its in-flight request quota.
  kQuotaExceeded,
  /// The request was cancelled before it completed.
  kCancelled,
  /// A campaign shard lease's fencing token is stale: the lease expired and
  /// was re-granted to another worker, so the submission must be dropped
  /// (src/core/campaign_lease.hpp).
  kLeaseExpired,
};

/// Stable short name, e.g. "kVppOutOfRange".
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Reverse of error_code_name (used when deserializing trace dumps and
/// fault-plan specs); kUnknown for unrecognized names.
[[nodiscard]] ErrorCode error_code_from_name(std::string_view name) noexcept;

/// Structured context attached to an Error as it crosses layers. Fields are
/// optional: negative numeric values / empty strings mean "not set".
struct ErrorContext {
  std::string module;       ///< module (DIMM) name, e.g. "B3"
  std::string op;           ///< command kind / operation, e.g. "RD", "hammer"
  std::int32_t bank = -1;
  std::int64_t row = -1;
  std::int64_t vpp_mv = -1; ///< VPP setpoint in millivolts
  std::string notes;        ///< breadcrumb chain, outermost first

  [[nodiscard]] bool empty() const noexcept {
    return module.empty() && op.empty() && bank < 0 && row < 0 &&
           vpp_mv < 0 && notes.empty();
  }
};

/// Error payload carried by Expected<T> / Status. `message` stays a public
/// field (a large body of tests and examples reads it directly); rich
/// rendering including code and context lives in to_string().
struct Error {
  Error() = default;
  Error(std::string msg) : message(std::move(msg)) {}  // NOLINT
  Error(const char* msg) : message(msg) {}             // NOLINT
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
  ErrorContext context;

  // --- with_context() chain --------------------------------------------------
  // Chainers take *this by rvalue so propagation sites read as one
  // expression:
  //   return std::move(st).error().with_module(name).with_context("phase B");
  // Existing fields win: an inner layer's module/bank/row is closer to the
  // failure than an outer layer's guess, so chainers only fill blanks.
  Error&& with_context(std::string_view note) &&;
  [[nodiscard]] Error with_context(std::string_view note) const&;
  Error&& with_module(std::string_view name) &&;
  Error&& with_op(std::string_view op) &&;
  Error&& with_bank(std::int32_t bank) &&;
  Error&& with_row(std::int64_t row) &&;
  Error&& with_bank_row(std::int32_t bank, std::int64_t row) &&;
  Error&& with_vpp_mv(std::int64_t vpp_mv) &&;
  /// Refine kUnknown to a concrete code; never overwrites a concrete code.
  Error&& with_code(ErrorCode c) &&;

  /// "[kReadUnderrun] message (module=B3 op=RD bank=0 row=17 vpp=1700mV)
  ///  {ctx: read verification <- phase B}"
  [[nodiscard]] std::string to_string() const;
};

}  // namespace vppstudy::common
