// Runtime-dispatched batched kernels for the counter-based hash walks.
//
// The device model synthesizes every per-cell quantity from
// hash_key({seed, bank, row, index, tag}) (see common/rng.hpp). The hot
// paths -- charged-polarity word construction, flip-index building, and the
// reference 65536-bit sensing scan -- evaluate that hash for every index of a
// row with a fixed (seed, bank, row) prefix and a fixed trailing tag. Because
// hash_key is a left fold of hash_accumulate, the prefix can be folded once
// and the per-index tail computed as
//
//   out[i] = hash_accumulate(hash_accumulate(prefix, index0 + i), tag)
//
// which is four independent SplitMix64 chains per AVX2 vector. This header
// exposes that walk behind a runtime-dispatched implementation (AVX2 when the
// CPU supports it, portable scalar otherwise). Both paths produce bit-exact
// identical output by construction: the AVX2 kernel performs the same adds,
// shifts, xors, and 64-bit multiplies per lane, just four lanes at a time.
//
// Dispatch is decided once, on first use, from CPU detection; it can be
// overridden for tests via force_impl() or the VPP_SIMD environment variable
// ("scalar" or "avx2"). Overrides are not thread-safe -- install them before
// spawning workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace vppstudy::common::simd {

enum class Impl {
  kScalar,  ///< portable fallback, used on non-x86 or by request
  kAvx2,    ///< 4-wide AVX2 kernels
};

/// True when this CPU can run the AVX2 kernels.
[[nodiscard]] bool avx2_supported() noexcept;

/// The implementation batched walks currently dispatch to.
[[nodiscard]] Impl active_impl() noexcept;

/// Human-readable name of active_impl() ("avx2" / "scalar").
[[nodiscard]] const char* active_impl_name() noexcept;

/// Force a specific implementation (tests, benchmarks, debugging). Returns
/// false and leaves dispatch unchanged if the requested implementation is not
/// supported on this CPU. Pass std::nullopt to restore auto-detection (which
/// still honors the VPP_SIMD environment variable).
bool force_impl(std::optional<Impl> impl) noexcept;

/// out[i] = hash_accumulate(hash_accumulate(prefix, index0 + i), tag) for
/// i in [0, n) -- i.e. hash_key({<prefix words>, index0 + i, tag}) where
/// `prefix` is the fold of the fixed leading key words.
void hash_index_walk(std::uint64_t prefix, std::uint64_t tag,
                     std::uint64_t index0, std::size_t n, std::uint64_t* out);

/// Same walk, converted through to_unit_double: uniform draws in [0, 1).
void uniform_index_walk(std::uint64_t prefix, std::uint64_t tag,
                        std::uint64_t index0, std::size_t n, double* out);

}  // namespace vppstudy::common::simd
