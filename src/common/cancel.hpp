// Cooperative cancellation for long-running campaigns.
//
// A CancelToken is a cheap shared handle onto one atomic flag: the vppd
// daemon hands a token to every queued job, sweeps check it between sampled
// rows (core/parallel_study), and a client cancel request flips the flag
// from another thread. Checks are acquire loads, cancel() is a release
// store -- no locks on the hot path. A default-constructed token is "never
// cancelled" and costs one shared_ptr; all existing call sites that do not
// care about cancellation pass that.
#pragma once

#include <atomic>
#include <memory>

namespace vppstudy::common {

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Request cancellation. Idempotent; visible to every copy of the token.
  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace vppstudy::common
