// The generation loop of the attack-pattern fuzzer.
//
// harness/pattern_fuzzer supplies the pure evolution primitives; this layer
// drives them against real (simulated) silicon. Each generation evolves one
// population per (module, VPP level) point, unions every population into a
// single pattern axis (plus the uniform double-sided reference), and runs
// that pattern x VPP x temperature grid through core::CampaignEngine -- so
// every execution amenity the engine has (checkpoint manifests, shard
// leasing, the vppd result cache) applies to fuzzing unchanged. The summed
// post-TRR flip count of a pattern's victim set at a point is its fitness
// there.
//
// Determinism: populations are pure functions of (config digest, generation)
// -- evolve_population is seeded per point and per generation -- and the
// engine's per-row stream keys fold in the pattern hash (core/axis.hpp), so
// two runs with the same config produce bit-identical populations, grids,
// and manifests at any --jobs count. The CI pattern-fuzz gauntlet asserts
// both properties, plus kill/resume byte-identity.
//
// Checkpointing is two-level. The fuzz manifest (vppstudy-fuzz-manifest/1,
// at FuzzCampaignConfig::base.manifest_path) records the config spec and
// every completed generation's scored populations; each generation's engine
// run checkpoints its own campaign manifest beside it at
// fuzz_generation_manifest_path(). A killed campaign resumes from the pair:
// completed generations restore from the fuzz manifest without touching a
// session, the interrupted generation resumes shard-by-shard from its
// engine manifest, and the merged result is byte-identical to an
// uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/json.hpp"
#include "core/campaign.hpp"
#include "harness/pattern_fuzzer.hpp"

namespace vppstudy::core {

/// The scored population of one (module, VPP) fuzzing point after a
/// completed generation.
struct FuzzPopulation {
  std::string module;
  std::uint64_t vpp_mv = 0;
  std::vector<harness::ScoredSpec> members;
};

struct FuzzCampaignConfig {
  /// The base plan: sweep, modules, seed, extra axes (temperature is fine;
  /// `axes.patterns` must be empty -- the fuzzer owns the pattern axis), and
  /// execution knobs. `manifest_path` names the fuzz-level manifest; empty
  /// disables checkpointing for the whole campaign.
  CampaignPlan base;
  /// Evolution steps. Generation 0 evaluates the initial population (the
  /// uniform reference plus seeded random specs).
  std::uint32_t generations = 4;
  harness::FuzzerConfig fuzzer;
};

/// Hash of every result-affecting config input: the base plan's rowhammer
/// digest folded with the generation budget and fuzzer parameters. Pins a
/// fuzz manifest to its config exactly like CampaignPlan::digest pins a
/// campaign manifest.
[[nodiscard]] std::uint64_t fuzz_config_digest(const FuzzCampaignConfig& config);

/// Engine checkpoint path of generation `g`: `<base>.gen<g>.json`.
[[nodiscard]] std::string fuzz_generation_manifest_path(
    const std::string& manifest_path, std::uint32_t generation);

/// The fuzz-level checkpoint document: config hash + the full config spec
/// (the base plan rides inside a zero-shard CampaignManifest, reusing its
/// serialization and plan_from_manifest) + every completed generation's
/// scored populations, in (module, VPP level) order.
struct FuzzManifest {
  static constexpr int kVersion = 1;
  static constexpr std::string_view kSchemaPrefix = "vppstudy-fuzz-manifest/";

  int version = kVersion;
  std::uint64_t config_hash = 0;
  std::uint32_t generations = 0;  ///< planned
  harness::FuzzerConfig fuzzer;
  CampaignManifest plan;  ///< base-plan spec carrier (no wcdp, no shards)
  std::vector<std::vector<FuzzPopulation>> completed;  ///< [generation][point]
};

[[nodiscard]] common::JsonWriter fuzz_manifest_json(const FuzzManifest& m);
[[nodiscard]] common::Result<FuzzManifest> parse_fuzz_manifest(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<FuzzManifest> load_fuzz_manifest(
    const std::string& path);
/// Atomic write (tmp + rename); advances the VPP_CAMPAIGN_KILL_AFTER
/// counter via campaign_checkpoint_written().
[[nodiscard]] bool write_fuzz_manifest(const std::string& path,
                                       const FuzzManifest& m);
/// Reconstruct the config a fuzz manifest was checkpointing (vppctl fuzz
/// resume works from the file alone). Execution knobs (jobs, manifest_path)
/// are left at defaults for the caller to re-choose.
[[nodiscard]] common::Result<FuzzCampaignConfig> config_from_fuzz_manifest(
    const FuzzManifest& m);

struct FuzzCampaignResult {
  std::uint32_t generations = 0;  ///< completed
  /// Final scored populations, one per (module, VPP) point in plan order,
  /// each ranked best-first by (score desc, spec_hash asc).
  std::vector<FuzzPopulation> points;
  /// The last generation's full pattern x VPP grids, one per module: every
  /// surviving spec plus the uniform reference evaluated at every point
  /// (bench/pattern_vpp_grid renders these).
  std::vector<HammerGrid> grids;
};

/// Run (or resume) the whole campaign. Pure function of the config: same
/// config -> bit-identical result, whether run in one go, killed and
/// resumed, serial or parallel.
[[nodiscard]] common::Expected<FuzzCampaignResult> run_fuzz_campaign(
    const FuzzCampaignConfig& config);

}  // namespace vppstudy::core
