#include "core/export.hpp"

#include "dram/data_pattern.hpp"

namespace vppstudy::core {

common::CsvWriter to_csv(const ModuleSweepResult& sweep) {
  common::CsvWriter csv(
      {"module", "row", "wcdp", "vpp_v", "hc_first", "ber"});
  for (const auto& row : sweep.rows) {
    for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
      if (l >= row.hc_first.size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(static_cast<std::uint64_t>(row.row));
      csv.add(dram::pattern_name(row.wcdp));
      csv.add(sweep.vpp_levels[l]);
      csv.add(static_cast<std::uint64_t>(row.hc_first[l]));
      csv.add(row.ber[l]);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const TrcdSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trcd_min_ns"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    csv.begin_row();
    csv.add(sweep.module_name);
    csv.add(sweep.vpp_levels[l]);
    csv.add(sweep.trcd_min_ns[l]);
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const RetentionSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trefw_ms", "mean_ber"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    for (std::size_t w = 0; w < sweep.trefw_ms.size(); ++w) {
      if (w >= sweep.mean_ber[l].size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(sweep.vpp_levels[l]);
      csv.add(sweep.trefw_ms[w]);
      csv.add(sweep.mean_ber[l][w]);
    }
  }
  csv.end_row();
  return csv;
}

}  // namespace vppstudy::core
