#include "core/export.hpp"

#include <algorithm>

#include "core/campaign.hpp"
#include "dram/data_pattern.hpp"

namespace vppstudy::core {

namespace {

void write_point_fields(common::CsvWriter& csv, const AxisPoint& point,
                        JobPhase phase) {
  csv.add(point.vpp_v);
  csv.add(point.resolved_temperature(phase));
  csv.add(point.hammer_count);
  csv.add(point.act_to_act_ns);
}

void write_point_json(common::JsonWriter& json, const AxisPoint& point,
                      JobPhase phase) {
  json.begin_object();
  json.kv("vpp_v", point.vpp_v);
  json.kv("temperature_c", point.resolved_temperature(phase));
  json.kv("hammer_count", point.hammer_count);
  json.kv("act_to_act_ns", point.act_to_act_ns);
  // Present only on pattern-axis points, so pattern-free grid documents are
  // byte-identical to the pre-pattern encoding.
  if (point.pattern_hash != 0) {
    json.kv("pattern_hash", u64_hex(point.pattern_hash));
  }
  json.end_object();
}

/// A grid carries a pattern axis iff any of its points does; the CSV schema
/// grows the pattern column only then (same byte-compat rule as above).
bool grid_has_patterns(const HammerGrid& grid) {
  return std::any_of(grid.points.begin(), grid.points.end(),
                     [](const AxisPoint& p) { return p.pattern_hash != 0; });
}

template <typename Grid>
void write_grid_header(common::JsonWriter& json, std::string_view kind,
                       const Grid& grid, JobPhase phase) {
  json.kv("kind", kind);
  json.kv("module", grid.module_name);
  json.key("points").begin_array();
  for (const AxisPoint& point : grid.points) {
    write_point_json(json, point, phase);
  }
  json.end_array();
  json.key("rows").begin_array();
  for (const std::uint32_t row : grid.rows) {
    json.value(static_cast<std::uint64_t>(row));
  }
  json.end_array();
}

}  // namespace

common::CsvWriter grid_csv(const HammerGrid& grid) {
  const bool patterns = grid_has_patterns(grid);
  std::vector<std::string> header{"module", "vpp_v", "temperature_c",
                                  "hammer_count", "act_to_act_ns"};
  if (patterns) header.emplace_back("pattern_hash");
  for (const char* column : {"row", "wcdp", "hc_first", "ber"}) {
    header.emplace_back(column);
  }
  common::CsvWriter csv(std::move(header));
  for (std::size_t p = 0; p < grid.points.size(); ++p) {
    for (std::size_t i = 0; i < grid.rows.size(); ++i) {
      const auto& cell = grid.cells[p][i];
      csv.begin_row();
      csv.add(grid.module_name);
      write_point_fields(csv, grid.points[p], JobPhase::kRowHammer);
      if (patterns) csv.add(u64_hex(grid.points[p].pattern_hash));
      csv.add(static_cast<std::uint64_t>(grid.rows[i]));
      csv.add(dram::pattern_name(grid.wcdp[i]));
      csv.add(cell.hc_first);
      csv.add(cell.ber);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter grid_csv(const TrcdGrid& grid) {
  common::CsvWriter csv({"module", "vpp_v", "temperature_c", "hammer_count",
                         "act_to_act_ns", "row", "trcd_min_ns"});
  for (std::size_t p = 0; p < grid.points.size(); ++p) {
    for (std::size_t i = 0; i < grid.rows.size(); ++i) {
      csv.begin_row();
      csv.add(grid.module_name);
      write_point_fields(csv, grid.points[p], JobPhase::kTrcd);
      csv.add(static_cast<std::uint64_t>(grid.rows[i]));
      csv.add(grid.cells[p][i].trcd_min_ns);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter grid_csv(const RetentionGrid& grid) {
  common::CsvWriter csv({"module", "vpp_v", "temperature_c", "hammer_count",
                         "act_to_act_ns", "row", "trefw_ms", "ber"});
  for (std::size_t p = 0; p < grid.points.size(); ++p) {
    for (std::size_t i = 0; i < grid.rows.size(); ++i) {
      const auto& cell = grid.cells[p][i];
      for (std::size_t w = 0; w < cell.trefw_ms.size(); ++w) {
        csv.begin_row();
        csv.add(grid.module_name);
        write_point_fields(csv, grid.points[p], JobPhase::kRetention);
        csv.add(static_cast<std::uint64_t>(grid.rows[i]));
        csv.add(cell.trefw_ms[w]);
        csv.add(cell.ber[w]);
      }
    }
  }
  csv.end_row();
  return csv;
}

common::JsonWriter grid_json(const HammerGrid& grid) {
  common::JsonWriter json;
  json.begin_object();
  write_grid_header(json, "rowhammer_grid", grid, JobPhase::kRowHammer);
  json.kv("mfr", static_cast<std::uint64_t>(grid.mfr));
  json.kv("vppmin_v", grid.vppmin_v);
  json.key("wcdp").begin_array();
  for (const dram::DataPattern pattern : grid.wcdp) {
    json.value(dram::pattern_name(pattern));
  }
  json.end_array();
  json.key("cells").begin_array();
  for (const auto& point_cells : grid.cells) {
    json.begin_array();
    for (const auto& cell : point_cells) {
      json.begin_object();
      json.kv("hc_first", cell.hc_first);
      json.kv("ber", cell.ber);
      json.end_object();
    }
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::JsonWriter grid_json(const TrcdGrid& grid) {
  common::JsonWriter json;
  json.begin_object();
  write_grid_header(json, "trcd_grid", grid, JobPhase::kTrcd);
  json.kv("vppmin_v", grid.vppmin_v);
  json.key("cells").begin_array();
  for (const auto& point_cells : grid.cells) {
    json.begin_array();
    for (const auto& cell : point_cells) json.value(cell.trcd_min_ns);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::JsonWriter grid_json(const RetentionGrid& grid) {
  common::JsonWriter json;
  json.begin_object();
  write_grid_header(json, "retention_grid", grid, JobPhase::kRetention);
  json.kv("mfr", static_cast<std::uint64_t>(grid.mfr));
  if (!grid.cells.empty() && !grid.cells.front().empty()) {
    json.key("trefw_ms").begin_array();
    for (const double t : grid.cells.front().front().trefw_ms) json.value(t);
    json.end_array();
  }
  json.key("cells").begin_array();
  for (const auto& point_cells : grid.cells) {
    json.begin_array();
    for (const auto& cell : point_cells) {
      json.begin_array();
      for (const double b : cell.ber) json.value(b);
      json.end_array();
    }
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::CsvWriter to_csv(const ModuleSweepResult& sweep) {
  common::CsvWriter csv(
      {"module", "row", "wcdp", "vpp_v", "hc_first", "ber"});
  for (const auto& row : sweep.rows) {
    for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
      if (l >= row.hc_first.size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(static_cast<std::uint64_t>(row.row));
      csv.add(dram::pattern_name(row.wcdp));
      csv.add(sweep.vpp_levels[l]);
      csv.add(static_cast<std::uint64_t>(row.hc_first[l]));
      csv.add(row.ber[l]);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const TrcdSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trcd_min_ns"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    csv.begin_row();
    csv.add(sweep.module_name);
    csv.add(sweep.vpp_levels[l]);
    csv.add(sweep.trcd_min_ns[l]);
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const RetentionSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trefw_ms", "mean_ber"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    for (std::size_t w = 0; w < sweep.trefw_ms.size(); ++w) {
      if (w >= sweep.mean_ber[l].size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(sweep.vpp_levels[l]);
      csv.add(sweep.trefw_ms[w]);
      csv.add(sweep.mean_ber[l][w]);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter campaign_to_csv(const CampaignResult& campaign) {
  common::CsvWriter csv({"module", "status", "error_code", "attempts", "row",
                         "wcdp", "vpp_v", "hc_first", "ber"});
  for (const ModuleCampaignResult& m : campaign.modules) {
    if (!m.completed) {
      csv.begin_row();
      csv.add(m.module_name);
      csv.add("quarantined");
      csv.add(common::error_code_name(m.error_code));
      csv.add(static_cast<std::uint64_t>(m.attempts));
      csv.add("");
      csv.add("");
      csv.add("");
      csv.add("");
      csv.add("");
      continue;
    }
    for (const RowSeries& row : m.sweep.rows) {
      for (std::size_t l = 0; l < m.sweep.vpp_levels.size(); ++l) {
        if (l >= row.hc_first.size()) continue;
        csv.begin_row();
        csv.add(m.module_name);
        csv.add("completed");
        csv.add("");
        csv.add(static_cast<std::uint64_t>(m.attempts));
        csv.add(static_cast<std::uint64_t>(row.row));
        csv.add(dram::pattern_name(row.wcdp));
        csv.add(m.sweep.vpp_levels[l]);
        csv.add(static_cast<std::uint64_t>(row.hc_first[l]));
        csv.add(row.ber[l]);
      }
    }
  }
  csv.end_row();
  return csv;
}

common::JsonWriter campaign_json(const CampaignResult& campaign) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("modules_total",
          static_cast<std::uint64_t>(campaign.modules.size()));
  json.kv("modules_completed",
          static_cast<std::uint64_t>(campaign.completed_count()));
  json.kv("retries", campaign.instrumentation.retries);
  json.kv("quarantined_modules", campaign.instrumentation.quarantined_modules);
  json.kv("hc_first_cv", campaign.hc_first_cv());
  json.key("modules").begin_array();
  for (const ModuleCampaignResult& m : campaign.modules) {
    json.begin_object();
    json.kv("module", m.module_name);
    json.kv("status", m.completed ? "completed" : "quarantined");
    json.kv("attempts", static_cast<std::uint64_t>(m.attempts));
    if (!m.completed) {
      json.kv("error_code", common::error_code_name(m.error_code));
      json.kv("error", m.error_message);
    }
    const auto& inj = m.injections;
    if (inj.total() > 0 || inj.flipped_bits > 0) {
      json.key("injections").begin_object();
      json.kv("dropped_acts", inj.dropped_acts);
      json.kv("duplicated_acts", inj.duplicated_acts);
      json.kv("dropped_reads", inj.dropped_reads);
      json.kv("corrupted_reads", inj.corrupted_reads);
      json.kv("flipped_bits", inj.flipped_bits);
      json.kv("delayed_pres", inj.delayed_pres);
      json.kv("spurious_errors", inj.spurious_errors);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::JsonWriter instrumentation_json(std::string_view sweep_kind,
                                        std::string_view module_name,
                                        std::span<const double> vpp_levels,
                                        const SweepInstrumentation& instr) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("sweep", sweep_kind);
  json.kv("module", module_name);
  json.key("vpp_levels").begin_array();
  for (const double v : vpp_levels) json.value(v);
  json.end_array();
  json.kv("jobs", instr.jobs);
  json.kv("retries", instr.retries);
  json.kv("quarantined_modules", instr.quarantined_modules);
  const softmc::CommandCounts& c = instr.counts;
  json.key("counts").begin_object();
  json.kv("activates", c.activates);
  json.kv("hammer_loops", c.hammer_loops);
  json.kv("hammer_activations", c.hammer_activations);
  json.kv("reads", c.reads);
  json.kv("writes", c.writes);
  json.kv("precharges", c.precharges);
  json.kv("refreshes", c.refreshes);
  json.kv("waits", c.waits);
  json.kv("timing_violations", c.timing_violations);
  json.kv("device_errors", c.device_errors);
  json.kv("simulated_ns", c.simulated_ns);
  json.kv("total_commands", c.total_commands());
  json.end_object();
  json.end_object();
  return json;
}

common::JsonWriter instrumentation_json(const ModuleSweepResult& sweep) {
  return instrumentation_json("rowhammer", sweep.module_name,
                              sweep.vpp_levels, sweep.instrumentation);
}

common::JsonWriter instrumentation_json(const TrcdSweepResult& sweep) {
  return instrumentation_json("trcd", sweep.module_name, sweep.vpp_levels,
                              sweep.instrumentation);
}

common::JsonWriter instrumentation_json(const RetentionSweepResult& sweep) {
  return instrumentation_json("retention", sweep.module_name,
                              sweep.vpp_levels, sweep.instrumentation);
}

bool write_instrumentation_sidecar(const std::string& csv_path,
                                   const common::JsonWriter& doc) {
  return doc.write_file(csv_path + ".json");
}

}  // namespace vppstudy::core
