#include "core/export.hpp"

#include "dram/data_pattern.hpp"

namespace vppstudy::core {

common::CsvWriter to_csv(const ModuleSweepResult& sweep) {
  common::CsvWriter csv(
      {"module", "row", "wcdp", "vpp_v", "hc_first", "ber"});
  for (const auto& row : sweep.rows) {
    for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
      if (l >= row.hc_first.size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(static_cast<std::uint64_t>(row.row));
      csv.add(dram::pattern_name(row.wcdp));
      csv.add(sweep.vpp_levels[l]);
      csv.add(static_cast<std::uint64_t>(row.hc_first[l]));
      csv.add(row.ber[l]);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const TrcdSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trcd_min_ns"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    csv.begin_row();
    csv.add(sweep.module_name);
    csv.add(sweep.vpp_levels[l]);
    csv.add(sweep.trcd_min_ns[l]);
  }
  csv.end_row();
  return csv;
}

common::CsvWriter to_csv(const RetentionSweepResult& sweep) {
  common::CsvWriter csv({"module", "vpp_v", "trefw_ms", "mean_ber"});
  for (std::size_t l = 0; l < sweep.vpp_levels.size(); ++l) {
    for (std::size_t w = 0; w < sweep.trefw_ms.size(); ++w) {
      if (w >= sweep.mean_ber[l].size()) continue;
      csv.begin_row();
      csv.add(sweep.module_name);
      csv.add(sweep.vpp_levels[l]);
      csv.add(sweep.trefw_ms[w]);
      csv.add(sweep.mean_ber[l][w]);
    }
  }
  csv.end_row();
  return csv;
}

common::CsvWriter campaign_to_csv(const CampaignResult& campaign) {
  common::CsvWriter csv({"module", "status", "error_code", "attempts", "row",
                         "wcdp", "vpp_v", "hc_first", "ber"});
  for (const ModuleCampaignResult& m : campaign.modules) {
    if (!m.completed) {
      csv.begin_row();
      csv.add(m.module_name);
      csv.add("quarantined");
      csv.add(common::error_code_name(m.error_code));
      csv.add(static_cast<std::uint64_t>(m.attempts));
      csv.add("");
      csv.add("");
      csv.add("");
      csv.add("");
      csv.add("");
      continue;
    }
    for (const RowSeries& row : m.sweep.rows) {
      for (std::size_t l = 0; l < m.sweep.vpp_levels.size(); ++l) {
        if (l >= row.hc_first.size()) continue;
        csv.begin_row();
        csv.add(m.module_name);
        csv.add("completed");
        csv.add("");
        csv.add(static_cast<std::uint64_t>(m.attempts));
        csv.add(static_cast<std::uint64_t>(row.row));
        csv.add(dram::pattern_name(row.wcdp));
        csv.add(m.sweep.vpp_levels[l]);
        csv.add(static_cast<std::uint64_t>(row.hc_first[l]));
        csv.add(row.ber[l]);
      }
    }
  }
  csv.end_row();
  return csv;
}

common::JsonWriter campaign_json(const CampaignResult& campaign) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("modules_total",
          static_cast<std::uint64_t>(campaign.modules.size()));
  json.kv("modules_completed",
          static_cast<std::uint64_t>(campaign.completed_count()));
  json.kv("retries", campaign.instrumentation.retries);
  json.kv("quarantined_modules", campaign.instrumentation.quarantined_modules);
  json.kv("hc_first_cv", campaign.hc_first_cv());
  json.key("modules").begin_array();
  for (const ModuleCampaignResult& m : campaign.modules) {
    json.begin_object();
    json.kv("module", m.module_name);
    json.kv("status", m.completed ? "completed" : "quarantined");
    json.kv("attempts", static_cast<std::uint64_t>(m.attempts));
    if (!m.completed) {
      json.kv("error_code", common::error_code_name(m.error_code));
      json.kv("error", m.error_message);
    }
    const auto& inj = m.injections;
    if (inj.total() > 0 || inj.flipped_bits > 0) {
      json.key("injections").begin_object();
      json.kv("dropped_acts", inj.dropped_acts);
      json.kv("duplicated_acts", inj.duplicated_acts);
      json.kv("dropped_reads", inj.dropped_reads);
      json.kv("corrupted_reads", inj.corrupted_reads);
      json.kv("flipped_bits", inj.flipped_bits);
      json.kv("delayed_pres", inj.delayed_pres);
      json.kv("spurious_errors", inj.spurious_errors);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::JsonWriter instrumentation_json(std::string_view sweep_kind,
                                        std::string_view module_name,
                                        std::span<const double> vpp_levels,
                                        const SweepInstrumentation& instr) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("sweep", sweep_kind);
  json.kv("module", module_name);
  json.key("vpp_levels").begin_array();
  for (const double v : vpp_levels) json.value(v);
  json.end_array();
  json.kv("jobs", instr.jobs);
  json.kv("retries", instr.retries);
  json.kv("quarantined_modules", instr.quarantined_modules);
  const softmc::CommandCounts& c = instr.counts;
  json.key("counts").begin_object();
  json.kv("activates", c.activates);
  json.kv("hammer_loops", c.hammer_loops);
  json.kv("hammer_activations", c.hammer_activations);
  json.kv("reads", c.reads);
  json.kv("writes", c.writes);
  json.kv("precharges", c.precharges);
  json.kv("refreshes", c.refreshes);
  json.kv("waits", c.waits);
  json.kv("timing_violations", c.timing_violations);
  json.kv("device_errors", c.device_errors);
  json.kv("simulated_ns", c.simulated_ns);
  json.kv("total_commands", c.total_commands());
  json.end_object();
  json.end_object();
  return json;
}

common::JsonWriter instrumentation_json(const ModuleSweepResult& sweep) {
  return instrumentation_json("rowhammer", sweep.module_name,
                              sweep.vpp_levels, sweep.instrumentation);
}

common::JsonWriter instrumentation_json(const TrcdSweepResult& sweep) {
  return instrumentation_json("trcd", sweep.module_name, sweep.vpp_levels,
                              sweep.instrumentation);
}

common::JsonWriter instrumentation_json(const RetentionSweepResult& sweep) {
  return instrumentation_json("retention", sweep.module_name,
                              sweep.vpp_levels, sweep.instrumentation);
}

bool write_instrumentation_sidecar(const std::string& csv_path,
                                   const common::JsonWriter& doc) {
  return doc.write_file(csv_path + ".json");
}

}  // namespace vppstudy::core
