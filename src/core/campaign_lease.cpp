#include "core/campaign_lease.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;
using common::JsonValue;

std::string_view lease_state_name(LeaseState state) noexcept {
  switch (state) {
    case LeaseState::kOpen: return "open";
    case LeaseState::kLeased: return "leased";
    case LeaseState::kDone: return "done";
  }
  return "open";
}

namespace {

[[nodiscard]] bool lease_state_from_name(std::string_view name,
                                         LeaseState& out) {
  constexpr LeaseState kAll[] = {LeaseState::kOpen, LeaseState::kLeased,
                                 LeaseState::kDone};
  for (const LeaseState s : kAll) {
    if (lease_state_name(s) == name) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

// --- ShardGridIndex ----------------------------------------------------------

ShardGridIndex::Key ShardGridIndex::key_of(const std::string& module,
                                           const AxisPoint& point,
                                           std::uint32_t row_begin,
                                           std::uint32_t row_end) {
  Key key;
  key.module = module;
  key.vpp_mv = static_cast<std::int64_t>(vpp_millivolts(point.vpp_v));
  key.temp_mc = temperature_millidegrees(point.temperature_c);
  key.hammer_count = point.hammer_count;
  key.act_ps = act_to_act_picoseconds(point.act_to_act_ns);
  key.row_begin = row_begin;
  key.row_end = row_end;
  return key;
}

ShardGridIndex::ShardGridIndex(const std::vector<ShardCoord>& grid) {
  sorted_.reserve(grid.size());
  for (const ShardCoord& coord : grid) {
    sorted_.emplace_back(
        key_of(coord.module, coord.point, coord.row_begin, coord.row_end),
        &coord);
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const ShardCoord* ShardGridIndex::find(const ManifestShard& shard) const {
  const Key key = key_of(shard.module, shard.point, shard.row_begin,
                         shard.row_end);
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [](const auto& entry, const Key& k) { return entry.first < k; });
  if (it == sorted_.end() || !(it->first == key)) return nullptr;
  return it->second;
}

// --- Lease ledger ------------------------------------------------------------

LeaseWorkerStats& CampaignLeaseLedger::worker_stats(const std::string& worker) {
  for (LeaseWorkerStats& stats : workers) {
    if (stats.worker == worker) return stats;
  }
  workers.push_back({worker, 0, 0, 0});
  return workers.back();
}

std::size_t CampaignLeaseLedger::expire_stale(std::int64_t now_ms) {
  std::size_t expired = 0;
  for (LeaseEntry& entry : entries) {
    if (entry.state != LeaseState::kLeased || entry.expires_at_ms > now_ms) {
      continue;
    }
    worker_stats(entry.worker).expired += 1;
    entry = LeaseEntry{};
    ++expired;
  }
  return expired;
}

CampaignLeaseLedger::Grant CampaignLeaseLedger::lease(
    const std::string& worker, std::size_t max_shards, std::int64_t now_ms,
    std::int64_t ttl_ms, const std::vector<std::size_t>* modules) {
  expire_stale(now_ms);

  // Candidate order. Canonical by default; module-affine when the caller
  // supplies the entry -> module map (three tiers, each canonical within
  // itself -- see the header). Affinity only reorders *which* open shards a
  // grant picks; disjointness and fencing are unchanged.
  std::vector<std::size_t> order;
  order.reserve(entries.size());
  const bool affine = modules != nullptr && !modules->empty() &&
                      modules->size() == entries.size();
  if (!affine) {
    for (std::size_t i = 0; i < entries.size(); ++i) order.push_back(i);
  } else {
    const std::size_t module_count =
        *std::max_element(modules->begin(), modules->end()) + 1;
    // 0 = this worker is on it, 1 = idle (no live lease by anyone else),
    // 2 = another worker is live on it.
    std::vector<std::uint8_t> tier(module_count, 1);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const LeaseEntry& entry = entries[i];
      const std::size_t m = (*modules)[i];
      if (entry.state == LeaseState::kLeased && entry.worker != worker) {
        if (tier[m] == 1) tier[m] = 2;
      } else if (entry.worker == worker &&
                 entry.state != LeaseState::kOpen) {
        tier[m] = 0;
      }
    }
    for (std::uint8_t want : {std::uint8_t{0}, std::uint8_t{1},
                              std::uint8_t{2}}) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (tier[(*modules)[i]] == want) order.push_back(i);
      }
    }
  }

  Grant grant;
  for (const std::size_t i : order) {
    if (max_shards != 0 && grant.shards.size() >= max_shards) break;
    if (entries[i].state != LeaseState::kOpen) continue;
    if (grant.token == 0) grant.token = next_token++;
    entries[i].state = LeaseState::kLeased;
    entries[i].worker = worker;
    entries[i].token = grant.token;
    entries[i].expires_at_ms = now_ms + ttl_ms;
    grant.shards.push_back(static_cast<std::uint64_t>(i));
  }
  std::sort(grant.shards.begin(), grant.shards.end());
  if (!grant.shards.empty()) {
    worker_stats(worker).leased += grant.shards.size();
  }
  return grant;
}

std::size_t CampaignLeaseLedger::renew(std::uint64_t token, std::int64_t now_ms,
                                       std::int64_t ttl_ms) {
  expire_stale(now_ms);
  std::size_t renewed = 0;
  for (LeaseEntry& entry : entries) {
    if (entry.state != LeaseState::kLeased || entry.token != token) continue;
    entry.expires_at_ms = now_ms + ttl_ms;
    ++renewed;
  }
  return renewed;
}

CampaignLeaseLedger::SubmitCheck CampaignLeaseLedger::check_submit(
    std::uint64_t index, std::uint64_t token) const {
  const LeaseEntry& entry = entries[static_cast<std::size_t>(index)];
  if (entry.state == LeaseState::kDone) return SubmitCheck::kDuplicate;
  if (entry.state == LeaseState::kLeased && token != 0 &&
      entry.token == token) {
    return SubmitCheck::kMergeable;
  }
  return SubmitCheck::kStale;
}

void CampaignLeaseLedger::mark_done(std::uint64_t index,
                                    const std::string& worker) {
  LeaseEntry& entry = entries[static_cast<std::size_t>(index)];
  entry.state = LeaseState::kDone;
  entry.worker = worker;
  entry.token = 0;
  entry.expires_at_ms = 0;
  worker_stats(worker).completed += 1;
}

std::uint64_t CampaignLeaseLedger::count(LeaseState state) const {
  std::uint64_t n = 0;
  for (const LeaseEntry& entry : entries) {
    if (entry.state == state) ++n;
  }
  return n;
}

// --- Ledger serialization ----------------------------------------------------

common::JsonWriter campaign_ledger_json(const CampaignLeaseLedger& ledger) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::string(CampaignLeaseLedger::kSchemaPrefix) +
                        std::to_string(ledger.version));
  json.kv("phase", campaign_phase_name(ledger.phase));
  json.kv("plan_hash", u64_hex(ledger.plan_hash));
  json.kv("next_token", u64_hex(ledger.next_token));
  json.key("entries").begin_array();
  for (const LeaseEntry& entry : ledger.entries) {
    json.begin_object();
    json.kv("state", lease_state_name(entry.state));
    if (entry.state != LeaseState::kOpen) {
      json.kv("worker", entry.worker);
    }
    if (entry.state == LeaseState::kLeased) {
      json.kv("token", u64_hex(entry.token));
      json.kv("expires_at_ms", entry.expires_at_ms);
    }
    json.end_object();
  }
  json.end_array();
  json.key("workers").begin_array();
  for (const LeaseWorkerStats& stats : ledger.workers) {
    json.begin_object();
    json.kv("name", stats.worker);
    json.kv("leased", stats.leased);
    json.kv("completed", stats.completed);
    json.kv("expired", stats.expired);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::Result<CampaignLeaseLedger> parse_campaign_ledger(
    const JsonValue& doc) {
  const auto fail = [](std::string what) {
    return Error{ErrorCode::kParseError,
                 "campaign lease ledger: " + std::move(what)};
  };
  if (!doc.is_object()) return fail("document is not an object");
  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind(CampaignLeaseLedger::kSchemaPrefix, 0) != 0) {
    return fail("unrecognized schema '" + schema + "'");
  }
  CampaignLeaseLedger ledger;
  ledger.version = std::atoi(
      schema.substr(CampaignLeaseLedger::kSchemaPrefix.size()).c_str());
  if (ledger.version < 1 || ledger.version > CampaignLeaseLedger::kVersion) {
    return fail("unsupported version " + std::to_string(ledger.version));
  }
  if (!campaign_phase_from_name(doc.string_or("phase", ""), ledger.phase)) {
    return fail("unknown phase '" + doc.string_or("phase", "") + "'");
  }
  if (!parse_u64_hex(doc.string_or("plan_hash", ""), ledger.plan_hash)) {
    return fail("missing or malformed plan_hash");
  }
  if (!parse_u64_hex(doc.string_or("next_token", ""), ledger.next_token)) {
    return fail("missing or malformed next_token");
  }
  if (ledger.next_token == 0) return fail("next_token must be nonzero");
  const JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return fail("missing 'entries' array");
  }
  for (const JsonValue& item : entries->items()) {
    if (!item.is_object()) return fail("entry is not an object");
    LeaseEntry entry;
    if (!lease_state_from_name(item.string_or("state", ""), entry.state)) {
      return fail("entry has unknown state '" + item.string_or("state", "") +
                  "'");
    }
    entry.worker = item.string_or("worker", "");
    if (entry.state == LeaseState::kLeased) {
      if (!parse_u64_hex(item.string_or("token", ""), entry.token) ||
          entry.token == 0) {
        return fail("leased entry missing token");
      }
      entry.expires_at_ms =
          static_cast<std::int64_t>(item.number_or("expires_at_ms", 0.0));
    }
    ledger.entries.push_back(std::move(entry));
  }
  if (const JsonValue* workers = doc.find("workers")) {
    for (const JsonValue& item : workers->items()) {
      if (!item.is_object()) return fail("worker entry is not an object");
      LeaseWorkerStats stats;
      stats.worker = item.string_or("name", "");
      if (stats.worker.empty()) return fail("worker entry missing name");
      stats.leased = item.uint_or("leased", 0);
      stats.completed = item.uint_or("completed", 0);
      stats.expired = item.uint_or("expired", 0);
      ledger.workers.push_back(std::move(stats));
    }
  }
  return ledger;
}

common::Result<CampaignLeaseLedger> load_campaign_ledger(
    const std::string& path) {
  VPP_ASSIGN_OR_RETURN(JsonValue doc, common::parse_json_file(path));
  return parse_campaign_ledger(doc);
}

bool write_campaign_ledger(const std::string& path,
                           const CampaignLeaseLedger& ledger) {
  const std::string tmp = path + ".tmp";
  if (!campaign_ledger_json(ledger).write_file(tmp)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::string campaign_ledger_path(const std::string& manifest_path) {
  return manifest_path + ".leases.json";
}

// --- Partial-manifest merge --------------------------------------------------

common::Result<ShardMergeOutcome> merge_campaign_shards(
    CampaignManifest& manifest, const std::vector<ShardCoord>& grid,
    std::uint64_t submitted_plan_hash, const std::vector<ManifestWcdp>& wcdp,
    const std::vector<ManifestShard>& shards) {
  const auto reject = [](std::string what) {
    return Error{ErrorCode::kInvalidArgument,
                 "campaign merge: " + std::move(what) + "; nothing merged"};
  };
  if (submitted_plan_hash != manifest.plan_hash) {
    return reject("plan hash mismatch (submission is for a different "
                  "campaign)");
  }
  const ShardGridIndex index(grid);

  // Validate the whole batch before touching the manifest.
  const auto module_pos =
      [&manifest](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < manifest.modules.size(); ++i) {
      if (manifest.modules[i].first == name) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return -1;
  };
  std::vector<const ShardCoord*> coords;
  coords.reserve(shards.size());
  for (const ManifestShard& shard : shards) {
    const ShardCoord* coord = index.find(shard);
    if (coord == nullptr) {
      return reject("shard record (module=" + shard.module +
                    ") is not a cell of this campaign");
    }
    coords.push_back(coord);
  }
  std::vector<std::ptrdiff_t> wcdp_pos;
  wcdp_pos.reserve(wcdp.size());
  for (const ManifestWcdp& record : wcdp) {
    const std::ptrdiff_t pos = module_pos(record.module);
    if (pos < 0) {
      return reject("wcdp record names unknown module '" + record.module +
                    "'");
    }
    wcdp_pos.push_back(pos);
  }
  // Existing records must map too (a record that does not is a corrupt or
  // foreign manifest -- refuse to merge into it).
  std::vector<std::uint64_t> existing;
  existing.reserve(manifest.shards.size());
  for (const ManifestShard& shard : manifest.shards) {
    const ShardCoord* coord = index.find(shard);
    if (coord == nullptr) {
      return reject("existing manifest record (module=" + shard.module +
                    ") is not a cell of this campaign");
    }
    existing.push_back(coord->index);
  }

  ShardMergeOutcome outcome;
  // WCDP preps: first-wins per module, kept in module plan order.
  for (std::size_t i = 0; i < wcdp.size(); ++i) {
    bool present = false;
    for (const ManifestWcdp& have : manifest.wcdp) {
      if (have.module == wcdp[i].module) {
        present = true;
        break;
      }
    }
    if (present) continue;
    std::size_t at = manifest.wcdp.size();
    for (std::size_t j = 0; j < manifest.wcdp.size(); ++j) {
      if (module_pos(manifest.wcdp[j].module) > wcdp_pos[i]) {
        at = j;
        break;
      }
    }
    manifest.wcdp.insert(
        manifest.wcdp.begin() + static_cast<std::ptrdiff_t>(at), wcdp[i]);
  }
  // Shards: insert in canonical grid order; already-present indices are
  // idempotent duplicates.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::uint64_t at_index = coords[i]->index;
    const auto it =
        std::lower_bound(existing.begin(), existing.end(), at_index);
    if (it != existing.end() && *it == at_index) {
      ++outcome.duplicates;
      continue;
    }
    const auto pos = it - existing.begin();
    existing.insert(it, at_index);
    manifest.shards.insert(manifest.shards.begin() + pos, shards[i]);
    ++outcome.accepted;
  }
  return outcome;
}

}  // namespace vppstudy::core
