// The unified campaign engine.
//
// One layered orchestrator replaces the four historical drivers (core/study
// serial, core/parallel_study sharded, core/resilient_study retry/quarantine,
// and the vppd service's in-house shard planner): a declarative CampaignPlan
// -- sweep + extra axes + modules + seed + shard granularity -- is compiled
// into (module, grid point, row-range shard) units and executed by
// CampaignEngine on a work-stealing pool with worker-local session arenas.
// The old facades survive as thin adapters and their outputs stay
// byte-identical: a VPP-only plan produces exactly the job set, stream keys,
// and assembly order the pre-engine code produced (core/axis.hpp explains
// the seed-normalization rule that makes this hold).
//
// Layers the engine composes:
//
//  * CellStore -- an optional per-row result store consulted before any
//    session runs. The vppd daemon adapts its content-addressed ResultCache
//    to this interface; rows served from the store are merged with computed
//    rows and the merged output is bit-identical to a fresh run, because
//    every row is a pure function of its stream key.
//
//  * Campaign manifest -- optional checkpoint/resume. When
//    CampaignPlan::manifest_path is set, the engine serializes a manifest
//    (plan hash + full plan spec + completed-shard records with per-row
//    results and session counts, versioned JSON like softmc/trace_dump)
//    after each shard completes, via atomic tmp+rename. A killed campaign
//    re-run against the same manifest skips completed shards and the merged
//    result -- rows, reductions, instrumentation -- is byte-identical to an
//    uninterrupted run. The manifest embeds the plan spec, so
//    plan_from_manifest reconstructs the campaign from the file alone
//    (vppctl campaign resume).
//
// Determinism: unit order (module, point, shard) is the assembly and
// error-priority order regardless of scheduling; manifest records are
// written in drain order, so "the first N shards" of a partial manifest is
// a deterministic set for any fixed jobs count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.hpp"
#include "common/expected.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/axis.hpp"
#include "core/parallel_study.hpp"
#include "core/resilient_study.hpp"
#include "core/study.hpp"
#include "dram/profile.hpp"

namespace vppstudy::softmc {
class Session;
}  // namespace vppstudy::softmc

namespace vppstudy::core {

/// A declarative multi-axis campaign: what to sweep (VPP levels come from
/// `sweep.vpp_levels`, extra axes from `axes`), on which modules, with which
/// seed, plus execution and checkpoint knobs.
struct CampaignPlan {
  SweepConfig sweep;
  CampaignAxes axes;
  std::vector<dram::ModuleProfile> modules;
  std::uint64_t seed = 0;
  /// Worker threads (StudyConfig::jobs semantics). Not part of the plan
  /// identity: any jobs count produces byte-identical results.
  int jobs = 1;
  std::uint32_t rows_per_shard = 4;
  common::CancelToken cancel;
  /// Checkpoint file; empty disables checkpointing. The manifest is keyed
  /// by digest(phase), so one path serves one (plan, phase) pair.
  std::string manifest_path;
  /// Stop submitting new shard computations after this many (0 = no limit)
  /// and fail with kCancelled once completed work is checkpointed -- the
  /// deterministic "kill mid-campaign" used by the resume tests, and a
  /// budget knob for incremental fill-in of big grids.
  std::uint32_t max_new_shards = 0;

  /// Lift a legacy StudyConfig into a VPP-only plan (the facade path).
  [[nodiscard]] static CampaignPlan from_study(StudyConfig config);

  /// Hash of every result-affecting plan input for `phase`: seed, sampling,
  /// phase configs, VPP levels, axes, shard granularity (the manifest's
  /// canonical shard grid), and module identities. jobs and manifest_path
  /// are excluded -- they do not change results.
  [[nodiscard]] std::uint64_t digest(JobPhase phase) const;
};

/// Optional per-row result store the engine consults before computing a
/// row and feeds after computing one. All methods take the *normalized*
/// grid point (core/axis.hpp), so implementations key by the same axis
/// coordinates the stream seeds use. Default implementation stores nothing.
class CellStore {
 public:
  virtual ~CellStore() = default;

  [[nodiscard]] virtual bool lookup_wcdp(const dram::ModuleProfile& profile,
                                         std::vector<dram::DataPattern>* out) {
    (void)profile;
    (void)out;
    return false;
  }
  virtual void store_wcdp(const dram::ModuleProfile& profile,
                          const std::vector<dram::DataPattern>& wcdp) {
    (void)profile;
    (void)wcdp;
  }

  [[nodiscard]] virtual bool lookup_hammer(const dram::ModuleProfile& profile,
                                           const AxisPoint& point,
                                           std::uint32_t row,
                                           harness::RowHammerRowResult* out) {
    (void)profile;
    (void)point;
    (void)row;
    (void)out;
    return false;
  }
  virtual void store_hammer(const dram::ModuleProfile& profile,
                            const AxisPoint& point,
                            const harness::RowHammerRowResult& row) {
    (void)profile;
    (void)point;
    (void)row;
  }

  [[nodiscard]] virtual bool lookup_trcd(const dram::ModuleProfile& profile,
                                         const AxisPoint& point,
                                         std::uint32_t row,
                                         harness::TrcdRowResult* out) {
    (void)profile;
    (void)point;
    (void)row;
    (void)out;
    return false;
  }
  virtual void store_trcd(const dram::ModuleProfile& profile,
                          const AxisPoint& point,
                          const harness::TrcdRowResult& row) {
    (void)profile;
    (void)point;
    (void)row;
  }

  [[nodiscard]] virtual bool lookup_retention(
      const dram::ModuleProfile& profile, const AxisPoint& point,
      std::uint32_t row, harness::RetentionRowResult* out) {
    (void)profile;
    (void)point;
    (void)row;
    (void)out;
    return false;
  }
  virtual void store_retention(const dram::ModuleProfile& profile,
                               const AxisPoint& point,
                               const harness::RetentionRowResult& row) {
    (void)profile;
    (void)point;
    (void)row;
  }
};

/// One reusable rig session per (worker, module name). Shared by the engine
/// and the vppd service (which serves many requests, hence name keying).
struct SessionArena {
  std::map<std::string, std::unique_ptr<softmc::Session>> sessions;
  softmc::Session& acquire(const dram::ModuleProfile& profile);
};

// --- Grid results ------------------------------------------------------------
// One grid per module per phase: `cells[point][i]` is the result of sampled
// row `rows[i]` at `points[point]`. For a VPP-only plan the points are
// exactly the usable VPP levels and to_sweep() reproduces the legacy result
// structs byte for byte.

struct HammerGrid {
  std::string module_name;
  dram::Manufacturer mfr = dram::Manufacturer::kMfrA;
  double vppmin_v = 0.0;
  std::vector<std::uint32_t> rows;
  std::vector<dram::DataPattern> wcdp;  ///< parallel to rows
  std::vector<AxisPoint> points;        ///< normalized, VPP-major
  std::vector<std::vector<harness::RowHammerRowResult>> cells;
  SweepInstrumentation instrumentation;

  [[nodiscard]] ModuleSweepResult to_sweep() const;
};

struct TrcdGrid {
  std::string module_name;
  double vppmin_v = 0.0;
  std::vector<std::uint32_t> rows;
  std::vector<AxisPoint> points;
  std::vector<std::vector<harness::TrcdRowResult>> cells;
  SweepInstrumentation instrumentation;

  [[nodiscard]] TrcdSweepResult to_sweep() const;
};

struct RetentionGrid {
  std::string module_name;
  dram::Manufacturer mfr = dram::Manufacturer::kMfrA;
  std::vector<std::uint32_t> rows;
  std::vector<AxisPoint> points;
  std::vector<std::vector<harness::RetentionRowResult>> cells;
  SweepInstrumentation instrumentation;

  [[nodiscard]] RetentionSweepResult to_sweep() const;
};

// --- Campaign manifest -------------------------------------------------------

/// One completed shard: its grid coordinates, the row results, and the
/// session counts that produced them (absent for shards served entirely
/// from a CellStore -- no session ran).
struct ManifestShard {
  std::string module;
  AxisPoint point;  ///< normalized
  std::uint32_t row_begin = 0;  ///< index range into the sampled row list
  std::uint32_t row_end = 0;
  bool counted = false;  ///< a session ran; counts below are meaningful
  softmc::CommandCounts counts;
  /// Exactly one of these is populated, per the manifest's phase.
  std::vector<harness::RowHammerRowResult> hammer;
  std::vector<harness::TrcdRowResult> trcd;
  std::vector<harness::RetentionRowResult> retention;
};

struct ManifestWcdp {
  std::string module;
  std::vector<dram::DataPattern> wcdp;
  bool counted = false;
  softmc::CommandCounts counts;
};

/// The checkpoint document: plan hash + the full plan spec (so resume can
/// reconstruct the campaign from the file alone) + completed work.
/// Versioned like softmc/trace_dump: unknown major versions are rejected,
/// unknown keys ignored.
struct CampaignManifest {
  static constexpr int kVersion = 1;
  static constexpr std::string_view kSchemaPrefix =
      "vppstudy-campaign-manifest/";

  int version = kVersion;
  JobPhase phase = JobPhase::kRowHammer;
  std::uint64_t plan_hash = 0;

  // Plan spec (modules by (name, rows_per_bank); profiles are rebuilt from
  // chips/module_db on resume).
  SweepConfig sweep;
  CampaignAxes axes;
  std::uint64_t seed = 0;
  std::uint32_t rows_per_shard = 4;
  std::vector<std::pair<std::string, std::uint32_t>> modules;

  std::vector<ManifestWcdp> wcdp;
  std::vector<ManifestShard> shards;

  /// Total shard units the plan compiles to (for status displays).
  std::uint64_t planned_shards = 0;
};

/// Stable phase tag used in manifests and status output: "wcdp",
/// "rowhammer", "trcd", or "retention".
[[nodiscard]] std::string_view campaign_phase_name(JobPhase phase) noexcept;
/// Reverse of campaign_phase_name; false for unrecognized names.
[[nodiscard]] bool campaign_phase_from_name(std::string_view name,
                                            JobPhase& out) noexcept;

// --- Record-level serialization ---------------------------------------------
// The wcdp/shard record encodings are shared by the manifest writer/parser,
// the lease ledger (core/campaign_lease.hpp), and the vppd lease protocol
// (workers stream ManifestShard records over the wire in `submit` frames);
// all producers and consumers must stay byte-compatible.

/// 64-bit hashes and seeds round-trip the JSON layer as hex strings: the
/// JsonValue DOM stores numbers as doubles, which would silently truncate
/// values past 2^53.
[[nodiscard]] std::string u64_hex(std::uint64_t v);
[[nodiscard]] bool parse_u64_hex(const std::string& s, std::uint64_t& out);

void manifest_wcdp_json(common::JsonWriter& json, const ManifestWcdp& record);
void manifest_shard_json(common::JsonWriter& json, const ManifestShard& shard,
                         JobPhase phase);
[[nodiscard]] common::Result<ManifestWcdp> parse_manifest_wcdp(
    const common::JsonValue& item);
[[nodiscard]] common::Result<ManifestShard> parse_manifest_shard(
    const common::JsonValue& item, JobPhase phase);

[[nodiscard]] common::JsonWriter campaign_manifest_json(
    const CampaignManifest& manifest);
[[nodiscard]] common::Result<CampaignManifest> parse_campaign_manifest(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<CampaignManifest> load_campaign_manifest(
    const std::string& path);
/// Atomic write (tmp + rename). Honors VPP_CAMPAIGN_KILL_AFTER=N: the
/// process SIGKILLs itself after the Nth successful manifest write -- the
/// deterministic mid-campaign kill used by the CI resume smoke test.
[[nodiscard]] bool write_campaign_manifest(const std::string& path,
                                           const CampaignManifest& manifest);
/// Advance the shared VPP_CAMPAIGN_KILL_AFTER write counter. Every
/// checkpoint writer (campaign manifests here, fuzz manifests in
/// core/fuzz_campaign) calls this after a successful atomic write, so the
/// env var counts checkpoints of any kind and a kill boundary can land
/// between fuzz generations as well as between shards.
void campaign_checkpoint_written();
/// Reconstruct the plan a manifest was checkpointing (vppctl campaign
/// resume). Fails if a module name is not in the module DB.
[[nodiscard]] common::Result<CampaignPlan> plan_from_manifest(
    const CampaignManifest& manifest);

/// External execution context: the vppd daemon keeps a long-lived pool with
/// warm session arenas across requests and lends it to each engine run. Both
/// pointers must outlive the engine; pass {} to let each run build its own
/// right-sized pool.
struct CampaignExecution {
  common::WorkerLocal<SessionArena>* arenas = nullptr;
  common::ThreadPool* pool = nullptr;
};

class CampaignEngine {
 public:
  using Execution = CampaignExecution;

  explicit CampaignEngine(CampaignPlan plan, CellStore* store = nullptr,
                          Execution exec = {});

  [[nodiscard]] const CampaignPlan& plan() const noexcept { return plan_; }

  /// Alg. 1 over the grid: one HammerGrid per module, in plan order. Fails
  /// on the first failing unit in (module, point, shard) order.
  [[nodiscard]] common::Expected<std::vector<HammerGrid>> run_hammer();
  /// Alg. 2 over the grid (VPP x temperature).
  [[nodiscard]] common::Expected<std::vector<TrcdGrid>> run_trcd();
  /// Alg. 3 over the grid (VPP x temperature).
  [[nodiscard]] common::Expected<std::vector<RetentionGrid>> run_retention();

  /// The retry/quarantine RowHammer campaign (core/resilient_study's
  /// engine): per-module attempt budgets, re-salted fault draws, quarantine
  /// records with replayable trace dumps. Serial by design -- the failure
  /// evidence of attempt N must not interleave with attempt N+1.
  [[nodiscard]] CampaignResult run_resilient(
      const softmc::FaultPlan& faults, const harness::RetryPolicy& retry,
      std::size_t trace_capacity);

 private:
  CampaignPlan plan_;
  CellStore* store_ = nullptr;
  Execution exec_;
};

}  // namespace vppstudy::core
