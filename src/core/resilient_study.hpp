// Fault-tolerant campaign runner: the RowHammer sweep of core/study wrapped
// in the harness retry/backoff policy (harness/recovery), with an optional
// deterministic FaultInjector standing in for the misbehaving silicon the
// paper's rig saw at reduced VPP. Each module gets a bounded attempt budget;
// transient typed failures re-run the module with re-salted fault draws,
// persistent ones (or an exhausted budget) quarantine it. Quarantined
// modules keep their failure evidence -- the typed error, the attempt count,
// and a replayable trace dump of the failing session -- and are excluded
// from cross-module statistics (hc_first_cv). Partial results export via
// core/export's campaign CSV/JSON with explicit status markers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "dram/profile.hpp"
#include "harness/recovery.hpp"
#include "softmc/fault_injector.hpp"
#include "softmc/trace_dump.hpp"

namespace vppstudy::core {

/// One resilient RowHammer campaign: which modules, which sweep, which
/// faults to inject, and how hard to retry.
struct ResilientConfig {
  SweepConfig sweep;
  std::vector<dram::ModuleProfile> modules;
  /// Base seed of the per-job noise streams (same role as StudyConfig::seed).
  std::uint64_t seed = 0;
  /// Faults to inject; an empty plan runs the campaign clean.
  softmc::FaultPlan faults;
  harness::RetryPolicy retry;
  /// Trace ring capacity of every campaign session (the failing session's
  /// ring becomes the quarantine dump).
  std::size_t trace_capacity = softmc::CommandTraceRecorder::kDefaultCapacity;
};

/// Outcome of one module's campaign.
struct ModuleCampaignResult {
  std::string module_name;
  bool completed = false;
  std::uint32_t attempts = 0;  ///< sessions-of-record: 1 + retries
  /// The final failure (quarantined modules only).
  common::ErrorCode error_code = common::ErrorCode::kUnknown;
  std::string error_message;
  /// Valid when completed.
  ModuleSweepResult sweep;
  /// Injection tallies of the final attempt (what the module survived or
  /// died to).
  softmc::FaultInjector::InjectionCounts injections;
  /// Replayable evidence of the failing session (quarantined modules only).
  bool has_dump = false;
  softmc::TraceDump dump;
};

struct CampaignResult {
  std::vector<ModuleCampaignResult> modules;  ///< config order
  /// All sessions the campaign ran, failed attempts included, with retry
  /// and quarantine accounting.
  SweepInstrumentation instrumentation;
  std::vector<harness::QuarantineRecord> quarantines;

  [[nodiscard]] std::size_t completed_count() const noexcept;
  /// Coefficient of variation of module-min HCfirst at the nominal level,
  /// across *completed* modules only -- quarantined modules carry partial
  /// or no data and would bias the spread (the paper's CV-across-repeats
  /// methodology, section 4.6, applied across modules). 0 with fewer than
  /// two completed modules.
  [[nodiscard]] double hc_first_cv() const;
};

/// Run the campaign. Always returns a result: per-module failures are
/// recorded as quarantines, never propagated as campaign failure.
[[nodiscard]] CampaignResult run_resilient_rowhammer(
    const ResilientConfig& config);

}  // namespace vppstudy::core
