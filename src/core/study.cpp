#include "core/study.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/units.hpp"
#include "core/parallel_study.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

std::string SweepInstrumentation::summary() const {
  std::string out = std::to_string(jobs) + " rig sessions";
  if (retries > 0 || quarantined_modules > 0) {
    out += " (" + std::to_string(retries) + " retried, " +
           std::to_string(quarantined_modules) + " module(s) quarantined)";
  }
  out += ": " + counts.summary();
  return out;
}

SweepConfig SweepConfig::paper() {
  SweepConfig c;
  for (double v = 2.5; v >= 1.4 - 1e-9; v -= 0.1) c.vpp_levels.push_back(v);
  c.sampling.chunks = 4;
  c.sampling.rows_per_chunk = 1024;
  c.hammer.num_iterations = 10;
  c.trcd.num_iterations = 10;
  c.retention.num_iterations = 1;
  return c;
}

SweepConfig SweepConfig::quick() {
  SweepConfig c;
  c.vpp_levels = {2.5, 2.2, 1.9, 1.6, 1.4};
  c.sampling.chunks = 4;
  c.sampling.rows_per_chunk = 8;
  c.hammer.num_iterations = 1;
  c.trcd.num_iterations = 1;
  c.trcd.column_stride = 32;
  c.retention.num_iterations = 1;
  return c;
}

int ModuleSweepResult::level_index(double vpp_v) const noexcept {
  for (std::size_t i = 0; i < vpp_levels.size(); ++i) {
    if (std::abs(vpp_levels[i] - vpp_v) < 1e-6) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t ModuleSweepResult::min_hc_first_at(std::size_t level) const {
  std::uint64_t best = 0;
  for (const auto& r : rows) {
    if (level >= r.hc_first.size()) continue;
    if (best == 0 || r.hc_first[level] < best) best = r.hc_first[level];
  }
  return best;
}

double ModuleSweepResult::max_ber_at(std::size_t level) const {
  double best = 0.0;
  for (const auto& r : rows) {
    if (level >= r.ber.size()) continue;
    best = std::max(best, r.ber[level]);
  }
  return best;
}

std::vector<double> ModuleSweepResult::normalized_hc_first_at(
    std::size_t level) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    if (level >= r.hc_first.size() || r.hc_first.empty()) continue;
    if (r.hc_first[0] == 0) continue;
    out.push_back(static_cast<double>(r.hc_first[level]) /
                  static_cast<double>(r.hc_first[0]));
  }
  return out;
}

std::vector<double> ModuleSweepResult::normalized_ber_at(
    std::size_t level) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    if (level >= r.ber.size() || r.ber.empty()) continue;
    // Rows whose BER is zero at either level are excluded from the
    // normalized population: a zero denominator is undefined, and a zero
    // numerator means the row's flip threshold moved past the fixed 300K
    // probe entirely (the paper's per-row ratios are over rows with
    // observable flips at both levels).
    if (r.ber[0] <= 0.0 || r.ber[level] <= 0.0) continue;
    out.push_back(r.ber[level] / r.ber[0]);
  }
  return out;
}

Study::Study(const dram::ModuleProfile& profile) : session_(profile) {
  // Characterization methodology (section 4.1): refresh disabled, which also
  // neutralizes TRR; RowHammer and tRCD tests run at 50C.
  session_.set_auto_refresh(false);
  (void)session_.set_temperature(common::kHammerTestTempC);
}

std::vector<double> usable_vpp_levels(const SweepConfig& config,
                                      double vppmin_v) {
  std::vector<double> out;
  for (double v : config.vpp_levels) {
    if (v >= vppmin_v - 1e-9) out.push_back(v);
  }
  return out;
}

namespace {

// The serial facade delegates to the sweep engine with one module and inline
// job execution: Study results are therefore bit-identical to what
// ParallelStudy produces for the same module at any --jobs count.
StudyConfig single_module_config(const dram::ModuleProfile& profile,
                                 const SweepConfig& sweep) {
  StudyConfig config;
  config.sweep = sweep;
  config.modules = {profile};
  config.jobs = 1;
  return config;
}

template <typename T>
common::Expected<T> first_or_error(common::Expected<std::vector<T>> sweeps) {
  if (!sweeps) return std::move(sweeps).error();
  if (sweeps->empty()) {
    return Error{ErrorCode::kEmptySample, "sweep produced no result"};
  }
  return std::move(sweeps->front());
}

}  // namespace

common::Expected<ModuleSweepResult> Study::rowhammer_sweep(
    const SweepConfig& config) {
  ParallelStudy engine(single_module_config(profile(), config));
  return first_or_error(engine.rowhammer_sweeps());
}

common::Expected<TrcdSweepResult> Study::trcd_sweep(const SweepConfig& config) {
  ParallelStudy engine(single_module_config(profile(), config));
  return first_or_error(engine.trcd_sweeps());
}

common::Expected<RetentionSweepResult> Study::retention_sweep(
    const SweepConfig& config) {
  ParallelStudy engine(single_module_config(profile(), config));
  return first_or_error(engine.retention_sweeps());
}

Observations aggregate_observations(
    std::span<const ModuleSweepResult> sweeps) {
  Observations obs;
  std::size_t n = 0;
  double sum_hc = 0.0;
  double sum_ber = 0.0;
  std::size_t hc_up = 0, hc_down = 0, ber_up = 0, ber_down = 0;
  for (const auto& sweep : sweeps) {
    if (sweep.vpp_levels.size() < 2) continue;
    const std::size_t last = sweep.vpp_levels.size() - 1;  // ~VPPmin
    for (const double r : sweep.normalized_hc_first_at(last)) {
      sum_hc += r - 1.0;
      obs.max_hc_first_increase = std::max(obs.max_hc_first_increase, r - 1.0);
      if (r > 1.0 + 1e-9) ++hc_up;
      if (r < 1.0 - 1e-9) ++hc_down;
      ++n;
    }
    for (const double r : sweep.normalized_ber_at(last)) {
      sum_ber += 1.0 - r;
      obs.max_ber_reduction = std::max(obs.max_ber_reduction, 1.0 - r);
      if (r < 1.0 - 1e-9) ++ber_down;
      if (r > 1.0 + 1e-9) ++ber_up;
    }
  }
  if (n == 0) return obs;
  const auto dn = static_cast<double>(n);
  obs.mean_hc_first_increase = sum_hc / dn;
  obs.mean_ber_reduction = sum_ber / dn;
  obs.fraction_rows_hc_increase = static_cast<double>(hc_up) / dn;
  obs.fraction_rows_hc_decrease = static_cast<double>(hc_down) / dn;
  obs.fraction_rows_ber_decrease = static_cast<double>(ber_down) / dn;
  obs.fraction_rows_ber_increase = static_cast<double>(ber_up) / dn;
  return obs;
}

}  // namespace vppstudy::core
