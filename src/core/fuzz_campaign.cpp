#include "core/fuzz_campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/rng.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;
using common::JsonValue;

namespace {

/// Domain tag of every fuzz-campaign hash ("fzcp").
constexpr std::uint64_t kFuzzCampaignDomain = 0x667a6370ULL;

/// One (module, VPP level) fuzzing point in plan order.
struct PointKey {
  std::string module;
  std::uint64_t module_seed = 0;
  std::uint64_t vpp_mv = 0;
};

/// The evolution seed of one point: populations at different points (and in
/// campaigns with different base seeds) evolve independently.
std::uint64_t point_population_seed(std::uint64_t seed, const PointKey& key) {
  return common::hash_key(
      {kFuzzCampaignDomain, seed, key.module_seed, key.vpp_mv});
}

/// The (module, VPP) points of a config, in (module, level) plan order --
/// the order populations are stored in manifests and results.
common::Expected<std::vector<PointKey>> plan_points(
    const FuzzCampaignConfig& config) {
  std::vector<PointKey> keys;
  for (const dram::ModuleProfile& profile : config.base.modules) {
    const std::vector<double> levels =
        usable_vpp_levels(config.base.sweep, profile.vppmin_v);
    if (levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    for (const double vpp : levels) {
      keys.push_back({profile.name, profile.seed, vpp_millivolts(vpp)});
    }
  }
  return keys;
}

/// Rank best-first by (score desc, spec_hash asc) -- the same total order
/// evolve_population uses, so displayed rankings match selection pressure.
void rank_members(std::vector<harness::ScoredSpec>& members) {
  std::stable_sort(members.begin(), members.end(),
                   [](const harness::ScoredSpec& a,
                      const harness::ScoredSpec& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.spec.spec_hash() < b.spec.spec_hash();
                   });
}

void population_json(common::JsonWriter& json, const FuzzPopulation& pop) {
  json.begin_object();
  json.kv("module", pop.module);
  json.kv("vpp_mv", pop.vpp_mv);
  json.key("members").begin_array();
  for (const harness::ScoredSpec& m : pop.members) {
    json.begin_object();
    json.kv("score", m.score);
    json.key("spec");
    harness::pattern_spec_json(json, m.spec);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

common::Result<FuzzPopulation> parse_population(const JsonValue& v) {
  if (!v.is_object()) {
    return Error{ErrorCode::kParseError, "fuzz population is not an object"};
  }
  FuzzPopulation pop;
  pop.module = v.string_or("module", "");
  pop.vpp_mv = v.uint_or("vpp_mv", 0);
  if (const JsonValue* members = v.find("members")) {
    for (const JsonValue& item : members->items()) {
      harness::ScoredSpec scored;
      scored.score = item.number_or("score", 0.0);
      const JsonValue* spec = item.find("spec");
      if (spec == nullptr) {
        return Error{ErrorCode::kParseError,
                     "fuzz population member lacks a spec"};
      }
      VPP_ASSIGN_OR_RETURN(scored.spec, harness::parse_pattern_spec(*spec));
      pop.members.push_back(std::move(scored));
    }
  }
  return pop;
}

}  // namespace

std::uint64_t fuzz_config_digest(const FuzzCampaignConfig& config) {
  std::uint64_t h = config.base.digest(JobPhase::kRowHammer);
  h = common::hash_accumulate(h, kFuzzCampaignDomain);
  h = common::hash_accumulate(h, config.generations);
  h = common::hash_accumulate(h, config.fuzzer.population);
  h = common::hash_accumulate(h, config.fuzzer.elites);
  h = common::hash_accumulate(h, config.fuzzer.limits.max_slots);
  h = common::hash_accumulate(h, config.fuzzer.limits.max_aggressors);
  h = common::hash_accumulate(h, config.fuzzer.limits.max_amplitude);
  h = common::hash_accumulate(
      h, static_cast<std::uint64_t>(
             static_cast<std::int64_t>(config.fuzzer.limits.max_offset)));
  // Corpus seeds shape generation 0, so they are part of the identity. The
  // fold is conditional on having any: seedless configs keep their digest.
  for (const harness::PatternSpec& seed_spec : config.fuzzer.seeds) {
    h = common::hash_accumulate(h, seed_spec.spec_hash());
  }
  return h;
}

std::string fuzz_generation_manifest_path(const std::string& manifest_path,
                                          std::uint32_t generation) {
  return manifest_path + ".gen" + std::to_string(generation) + ".json";
}

common::JsonWriter fuzz_manifest_json(const FuzzManifest& m) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::string(FuzzManifest::kSchemaPrefix) +
                        std::to_string(m.version));
  json.kv("config_hash", u64_hex(m.config_hash));
  json.kv("generations", static_cast<std::uint64_t>(m.generations));
  json.key("fuzzer").begin_object();
  json.kv("population", static_cast<std::uint64_t>(m.fuzzer.population));
  json.kv("elites", static_cast<std::uint64_t>(m.fuzzer.elites));
  json.key("limits").begin_object();
  json.kv("max_slots", static_cast<std::uint64_t>(m.fuzzer.limits.max_slots));
  json.kv("max_aggressors",
          static_cast<std::uint64_t>(m.fuzzer.limits.max_aggressors));
  json.kv("max_amplitude",
          static_cast<std::uint64_t>(m.fuzzer.limits.max_amplitude));
  json.kv("max_offset",
          static_cast<std::int64_t>(m.fuzzer.limits.max_offset));
  json.end_object();
  // Emitted only when present, so seedless manifests keep their bytes.
  if (!m.fuzzer.seeds.empty()) {
    json.key("seeds").begin_array();
    for (const harness::PatternSpec& seed_spec : m.fuzzer.seeds) {
      harness::pattern_spec_json(json, seed_spec);
    }
    json.end_array();
  }
  json.end_object();
  json.key("plan").raw(campaign_manifest_json(m.plan).str());
  json.key("completed").begin_array();
  for (const std::vector<FuzzPopulation>& generation : m.completed) {
    json.begin_array();
    for (const FuzzPopulation& pop : generation) population_json(json, pop);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::Result<FuzzManifest> parse_fuzz_manifest(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Error{ErrorCode::kParseError, "fuzz manifest is not an object"};
  }
  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind(FuzzManifest::kSchemaPrefix, 0) != 0) {
    return Error{ErrorCode::kParseError,
                 "not a fuzz manifest (schema '" + schema + "')"};
  }
  FuzzManifest m;
  m.version =
      std::atoi(schema.substr(FuzzManifest::kSchemaPrefix.size()).c_str());
  if (m.version != FuzzManifest::kVersion) {
    return Error{ErrorCode::kParseError,
                 "unsupported fuzz manifest version " + schema};
  }
  if (!parse_u64_hex(doc.string_or("config_hash", ""), m.config_hash)) {
    return Error{ErrorCode::kParseError, "fuzz manifest lacks a config hash"};
  }
  m.generations = static_cast<std::uint32_t>(doc.uint_or("generations", 0));
  if (const JsonValue* fuzzer = doc.find("fuzzer")) {
    m.fuzzer.population =
        static_cast<std::uint32_t>(fuzzer->uint_or("population", 8));
    m.fuzzer.elites = static_cast<std::uint32_t>(fuzzer->uint_or("elites", 2));
    if (const JsonValue* limits = fuzzer->find("limits")) {
      m.fuzzer.limits.max_slots =
          static_cast<std::uint32_t>(limits->uint_or("max_slots", 256));
      m.fuzzer.limits.max_aggressors =
          static_cast<std::uint32_t>(limits->uint_or("max_aggressors", 12));
      m.fuzzer.limits.max_amplitude =
          static_cast<std::uint32_t>(limits->uint_or("max_amplitude", 64));
      m.fuzzer.limits.max_offset =
          static_cast<std::int32_t>(limits->number_or("max_offset", 8));
    }
    if (const JsonValue* seeds = fuzzer->find("seeds")) {
      for (const JsonValue& item : seeds->items()) {
        VPP_ASSIGN_OR_RETURN(harness::PatternSpec seed_spec,
                             harness::parse_pattern_spec(item));
        m.fuzzer.seeds.push_back(std::move(seed_spec));
      }
    }
  }
  const JsonValue* plan = doc.find("plan");
  if (plan == nullptr) {
    return Error{ErrorCode::kParseError, "fuzz manifest lacks a plan"};
  }
  VPP_ASSIGN_OR_RETURN(m.plan, parse_campaign_manifest(*plan));
  if (const JsonValue* completed = doc.find("completed")) {
    for (const JsonValue& generation : completed->items()) {
      std::vector<FuzzPopulation> pops;
      for (const JsonValue& item : generation.items()) {
        VPP_ASSIGN_OR_RETURN(FuzzPopulation pop, parse_population(item));
        pops.push_back(std::move(pop));
      }
      m.completed.push_back(std::move(pops));
    }
  }
  return m;
}

common::Result<FuzzManifest> load_fuzz_manifest(const std::string& path) {
  VPP_ASSIGN_OR_RETURN(JsonValue doc, common::parse_json_file(path));
  return parse_fuzz_manifest(doc);
}

bool write_fuzz_manifest(const std::string& path, const FuzzManifest& m) {
  const std::string tmp = path + ".tmp";
  if (!fuzz_manifest_json(m).write_file(tmp)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  campaign_checkpoint_written();
  return true;
}

common::Result<FuzzCampaignConfig> config_from_fuzz_manifest(
    const FuzzManifest& m) {
  FuzzCampaignConfig config;
  VPP_ASSIGN_OR_RETURN(config.base, plan_from_manifest(m.plan));
  config.generations = m.generations;
  config.fuzzer = m.fuzzer;
  return config;
}

common::Expected<FuzzCampaignResult> run_fuzz_campaign(
    const FuzzCampaignConfig& config) {
  if (config.generations == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "fuzz campaign needs at least one generation"};
  }
  if (config.fuzzer.population < 2) {
    return Error{ErrorCode::kInvalidArgument,
                 "fuzz campaign needs a population of at least 2"};
  }
  if (!config.base.axes.patterns.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "the fuzz campaign owns the pattern axis; base.axes.patterns "
                 "must be empty"};
  }
  VPP_ASSIGN_OR_RETURN(std::vector<PointKey> keys, plan_points(config));

  const std::uint64_t digest = fuzz_config_digest(config);
  FuzzManifest manifest;
  const std::string& manifest_path = config.base.manifest_path;
  if (!manifest_path.empty() &&
      std::ifstream(manifest_path.c_str()).good()) {
    VPP_ASSIGN_OR_RETURN(manifest, load_fuzz_manifest(manifest_path));
    if (manifest.config_hash != digest) {
      return Error{ErrorCode::kInvalidArgument,
                   "fuzz manifest config hash mismatch (the config changed "
                   "since the checkpoint was written)"};
    }
    if (manifest.completed.size() > config.generations) {
      return Error{ErrorCode::kInvalidArgument,
                   "fuzz manifest has more generations than the config plans"};
    }
    for (const std::vector<FuzzPopulation>& generation : manifest.completed) {
      if (generation.size() != keys.size()) {
        return Error{ErrorCode::kInvalidArgument,
                     "fuzz manifest population layout mismatch"};
      }
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (generation[k].module != keys[k].module ||
            generation[k].vpp_mv != keys[k].vpp_mv) {
          return Error{ErrorCode::kInvalidArgument,
                       "fuzz manifest population layout mismatch"};
        }
      }
    }
  } else {
    manifest.config_hash = digest;
    manifest.generations = config.generations;
    manifest.fuzzer = config.fuzzer;
    manifest.plan.phase = JobPhase::kRowHammer;
    manifest.plan.plan_hash = config.base.digest(JobPhase::kRowHammer);
    manifest.plan.sweep = config.base.sweep;
    manifest.plan.axes = config.base.axes;
    manifest.plan.seed = config.base.seed;
    manifest.plan.rows_per_shard = config.base.rows_per_shard;
    for (const dram::ModuleProfile& mod : config.base.modules) {
      manifest.plan.modules.emplace_back(mod.name, mod.rows_per_bank);
    }
    // Write the empty manifest up front: generation 0's engine checkpoints
    // land beside it, and a kill before the first generation completes must
    // still leave a file `fuzz resume` can load.
    if (!manifest_path.empty() &&
        !write_fuzz_manifest(manifest_path, manifest)) {
      return Error{ErrorCode::kIoError,
                   "failed to write fuzz manifest " + manifest_path};
    }
  }

  const auto done = static_cast<std::uint32_t>(manifest.completed.size());
  std::vector<std::vector<harness::ScoredSpec>> scored(keys.size());
  std::vector<HammerGrid> grids;
  for (std::uint32_t g = 0; g < config.generations; ++g) {
    // This generation's populations: restored verbatim for completed
    // generations, evolved from the previous scores otherwise. Either way
    // they are the same specs -- evolution is a pure function of the stored
    // state, which is what makes resume bit-identical.
    std::vector<std::vector<harness::PatternSpec>> pops(keys.size());
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (g < done) {
        for (const harness::ScoredSpec& m : manifest.completed[g][k].members) {
          pops[k].push_back(m.spec);
        }
      } else {
        pops[k] = harness::evolve_population(
            scored[k], point_population_seed(config.base.seed, keys[k]), g,
            config.fuzzer);
      }
    }

    // A completed generation needs no session time; the engine only runs for
    // the last one (restoring from its checkpoint when there is one) so the
    // result carries the final grids.
    const bool run_engine = g >= done || g + 1 == config.generations;
    if (run_engine) {
      // One pattern axis for the whole grid: the uniform reference first
      // (the bench baseline), then the union of every point's population,
      // deduplicated by spec hash in point order.
      std::vector<harness::PatternSpec> axis;
      std::vector<std::uint64_t> seen;
      axis.push_back(harness::uniform_double_sided_spec());
      seen.push_back(axis.back().spec_hash());
      for (const std::vector<harness::PatternSpec>& pop : pops) {
        for (const harness::PatternSpec& spec : pop) {
          const std::uint64_t h = spec.spec_hash();
          if (std::find(seen.begin(), seen.end(), h) == seen.end()) {
            axis.push_back(spec);
            seen.push_back(h);
          }
        }
      }

      CampaignPlan plan = config.base;
      plan.axes.patterns = std::move(axis);
      plan.manifest_path =
          manifest_path.empty()
              ? std::string{}
              : fuzz_generation_manifest_path(manifest_path, g);
      CampaignEngine engine(std::move(plan));
      auto run = engine.run_hammer();
      if (!run) {
        return std::move(run).error().with_context(
            "fuzz generation " + std::to_string(g));
      }
      grids = std::move(*run);
    }

    if (g < done) {
      for (std::size_t k = 0; k < keys.size(); ++k) {
        scored[k] = manifest.completed[g][k].members;
      }
      continue;
    }

    // Fitness: summed post-TRR flips (hc_first) of a spec's grid cells at
    // the population's (module, VPP) point, across all temperatures.
    std::vector<FuzzPopulation> generation(keys.size());
    for (std::size_t k = 0; k < keys.size(); ++k) {
      scored[k].clear();
      for (const harness::PatternSpec& spec : pops[k]) {
        const std::uint64_t hash = spec.spec_hash();
        double total = 0.0;
        for (const HammerGrid& grid : grids) {
          if (grid.module_name != keys[k].module) continue;
          for (std::size_t p = 0; p < grid.points.size(); ++p) {
            const AxisPoint& point = grid.points[p];
            if (point.pattern_hash != hash ||
                vpp_millivolts(point.vpp_v) != keys[k].vpp_mv) {
              continue;
            }
            for (const harness::RowHammerRowResult& row : grid.cells[p]) {
              total += static_cast<double>(row.hc_first);
            }
          }
        }
        scored[k].push_back({spec, total});
      }
      generation[k].module = keys[k].module;
      generation[k].vpp_mv = keys[k].vpp_mv;
      generation[k].members = scored[k];
    }
    manifest.completed.push_back(std::move(generation));
    if (!manifest_path.empty() &&
        !write_fuzz_manifest(manifest_path, manifest)) {
      return Error{ErrorCode::kIoError,
                   "failed to write fuzz manifest " + manifest_path};
    }
  }

  FuzzCampaignResult result;
  result.generations = config.generations;
  result.points.resize(keys.size());
  for (std::size_t k = 0; k < keys.size(); ++k) {
    result.points[k].module = keys[k].module;
    result.points[k].vpp_mv = keys[k].vpp_mv;
    result.points[k].members = scored[k];
    rank_members(result.points[k].members);
  }
  result.grids = std::move(grids);
  return result;
}

}  // namespace vppstudy::core
