// CSV exporters for sweep results, so downstream plotting (Fig. 3/5/7/10
// style) can consume the data without linking the library, plus the JSON
// instrumentation sidecar written next to each CSV series.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "common/csv.hpp"
#include "common/json.hpp"
#include "core/campaign.hpp"
#include "core/resilient_study.hpp"
#include "core/study.hpp"

namespace vppstudy::core {

// --- Multi-axis grid exports -------------------------------------------------
// One row per (grid point, DRAM row) with every axis coordinate spelled out:
// temperature_c is resolved to the value the rig programmed (the phase
// default when the point left it unset); hammer_count and act_to_act_ns are
// 0 when the sweep default applied. The JSON forms are the deterministic
// "*_grid" result kinds the vppd daemon returns for multi-axis sweeps.

[[nodiscard]] common::CsvWriter grid_csv(const HammerGrid& grid);
[[nodiscard]] common::CsvWriter grid_csv(const TrcdGrid& grid);
[[nodiscard]] common::CsvWriter grid_csv(const RetentionGrid& grid);

[[nodiscard]] common::JsonWriter grid_json(const HammerGrid& grid);
[[nodiscard]] common::JsonWriter grid_json(const TrcdGrid& grid);
[[nodiscard]] common::JsonWriter grid_json(const RetentionGrid& grid);

/// One row per (DRAM row, VPP level): module, row, wcdp, vpp, hc_first, ber.
[[nodiscard]] common::CsvWriter to_csv(const ModuleSweepResult& sweep);

/// One row per VPP level: module, vpp, trcd_min_ns.
[[nodiscard]] common::CsvWriter to_csv(const TrcdSweepResult& sweep);

/// One row per (VPP level, refresh window): module, vpp, trefw_ms, mean_ber.
[[nodiscard]] common::CsvWriter to_csv(const RetentionSweepResult& sweep);

/// Partial-result export of a resilient campaign. Completed modules emit
/// one row per (DRAM row, VPP level) with status "completed"; quarantined
/// modules emit a single marker row with status "quarantined", the typed
/// error code, and the attempt count, so downstream consumers can tell a
/// missing point from a never-measured one.
[[nodiscard]] common::CsvWriter campaign_to_csv(const CampaignResult& campaign);

/// The campaign as a JSON document: per-module status, attempts, typed
/// error codes, injection tallies, retry/quarantine accounting, and the
/// cross-module HCfirst CV over completed modules.
[[nodiscard]] common::JsonWriter campaign_json(const CampaignResult& campaign);

/// A sweep's rig instrumentation as a JSON document: sweep kind, module,
/// tested VPP levels, and the aggregated per-sweep command counts. Written
/// as the `<csv>.json` sidecar next to every exported CSV series so plotting
/// pipelines can sanity-check the command stream that produced the data.
[[nodiscard]] common::JsonWriter instrumentation_json(
    std::string_view sweep_kind, std::string_view module_name,
    std::span<const double> vpp_levels, const SweepInstrumentation& instr);

/// Convenience overloads binding kind/module/levels from the result type.
[[nodiscard]] common::JsonWriter instrumentation_json(
    const ModuleSweepResult& sweep);
[[nodiscard]] common::JsonWriter instrumentation_json(
    const TrcdSweepResult& sweep);
[[nodiscard]] common::JsonWriter instrumentation_json(
    const RetentionSweepResult& sweep);

/// Write a sweep's instrumentation sidecar next to its CSV: the sidecar path
/// is `csv_path + ".json"`. Returns false on I/O failure.
[[nodiscard]] bool write_instrumentation_sidecar(const std::string& csv_path,
                                                 const common::JsonWriter& doc);

}  // namespace vppstudy::core
