// CSV exporters for sweep results, so downstream plotting (Fig. 3/5/7/10
// style) can consume the data without linking the library.
#pragma once

#include <string>

#include "common/csv.hpp"
#include "core/study.hpp"

namespace vppstudy::core {

/// One row per (DRAM row, VPP level): module, row, wcdp, vpp, hc_first, ber.
[[nodiscard]] common::CsvWriter to_csv(const ModuleSweepResult& sweep);

/// One row per VPP level: module, vpp, trcd_min_ns.
[[nodiscard]] common::CsvWriter to_csv(const TrcdSweepResult& sweep);

/// One row per (VPP level, refresh window): module, vpp, trefw_ms, mean_ber.
[[nodiscard]] common::CsvWriter to_csv(const RetentionSweepResult& sweep);

}  // namespace vppstudy::core
