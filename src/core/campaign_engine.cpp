// CampaignEngine execution: plan compilation into (module, point, shard)
// units, the layered resolve order (manifest -> CellStore -> compute), and
// the deterministic drain/assembly that keeps results byte-identical to the
// pre-engine drivers. Manifest/plan serialization lives in campaign.cpp.
#include <algorithm>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/campaign.hpp"
#include "core/campaign_lease.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

namespace {

/// Below this many planned jobs the pool is pure overhead (thread spin-up,
/// futures, arenas migrating between cores): run everything inline instead.
constexpr std::size_t kMinJobsForPool = 8;

unsigned workers_for(int jobs, std::size_t planned_jobs) {
  if (planned_jobs < kMinJobsForPool) return 0;
  const unsigned workers = common::ThreadPool::workers_for_jobs(jobs);
  return static_cast<unsigned>(std::min<std::size_t>(workers, planned_jobs));
}

/// A [begin, end) index range into the sampled row list.
struct ShardSpec {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<ShardSpec> shard_ranges(std::size_t rows,
                                    std::uint32_t rows_per_shard) {
  const std::size_t step = rows_per_shard == 0 ? rows : rows_per_shard;
  std::vector<ShardSpec> out;
  for (std::size_t b = 0; b < rows; b += step) {
    out.push_back({b, std::min(rows, b + step)});
  }
  return out;
}

/// Per-module compilation of the plan: usable levels expanded into grid
/// points, the sampled rows, and the shard grid over them.
struct ModulePlan {
  std::vector<AxisPoint> points;
  double nominal_vpp = 0.0;  ///< highest usable level (WCDP prep runs here)
  std::shared_ptr<const std::vector<std::uint32_t>> rows;
  std::vector<ShardSpec> shards;
};

common::Expected<std::vector<ModulePlan>> plan_modules(
    const CampaignPlan& plan, JobPhase phase) {
  std::vector<ModulePlan> plans(plan.modules.size());
  for (std::size_t m = 0; m < plan.modules.size(); ++m) {
    const dram::ModuleProfile& profile = plan.modules[m];
    const std::vector<double> levels =
        usable_vpp_levels(plan.sweep, profile.vppmin_v);
    if (levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    plans[m].nominal_vpp = levels.front();
    plans[m].points =
        plan.axes.points_for(levels, phase, plan.sweep.hammer.ber_hc);
    auto rows = sample_campaign_rows(profile, plan.sweep.sampling);
    if (rows.empty()) {
      return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
          .with_module(profile.name);
    }
    plans[m].shards = shard_ranges(rows.size(), plan.rows_per_shard);
    plans[m].rows =
        std::make_shared<const std::vector<std::uint32_t>>(std::move(rows));
  }
  return plans;
}

/// Checkpoint state of one run: the manifest document plus append-and-flush.
struct ManifestCtx {
  bool enabled = false;
  std::string path;
  CampaignManifest doc;

  [[nodiscard]] const ManifestWcdp* find_wcdp(const std::string& module) const {
    for (const ManifestWcdp& w : doc.wcdp) {
      if (w.module == module) return &w;
    }
    return nullptr;
  }
  [[nodiscard]] const ManifestShard* find_shard(const std::string& module,
                                                const AxisPoint& point,
                                                std::uint32_t row_begin,
                                                std::uint32_t row_end) const {
    for (const ManifestShard& s : doc.shards) {
      if (s.module == module && s.point == point &&
          s.row_begin == row_begin && s.row_end == row_end) {
        return &s;
      }
    }
    return nullptr;
  }
  [[nodiscard]] common::Status flush() const {
    if (!write_campaign_manifest(path, doc)) {
      return Error{ErrorCode::kIoError,
                   "failed to write campaign manifest " + path};
    }
    return common::Status::ok_status();
  }
  [[nodiscard]] common::Status append_wcdp(ManifestWcdp record) {
    doc.wcdp.push_back(std::move(record));
    return flush();
  }
  [[nodiscard]] common::Status append_shard(ManifestShard record) {
    doc.shards.push_back(std::move(record));
    return flush();
  }
};

common::Expected<ManifestCtx> init_manifest(const CampaignPlan& plan,
                                            JobPhase phase,
                                            std::uint64_t planned_shards) {
  ManifestCtx ctx;
  if (plan.manifest_path.empty()) return ctx;
  ctx.enabled = true;
  ctx.path = plan.manifest_path;
  const std::uint64_t hash = plan.digest(phase);
  if (std::ifstream probe(plan.manifest_path); probe.good()) {
    VPP_ASSIGN_OR_RETURN(ctx.doc, load_campaign_manifest(plan.manifest_path));
    if (ctx.doc.phase != phase) {
      return Error{ErrorCode::kInvalidArgument,
                   "campaign manifest phase mismatch: checkpoint is " +
                       std::string(campaign_phase_name(ctx.doc.phase)) +
                       ", plan wants " +
                       std::string(campaign_phase_name(phase))};
    }
    if (ctx.doc.plan_hash != hash) {
      return Error{ErrorCode::kInvalidArgument,
                   "campaign manifest plan hash mismatch (the plan changed "
                   "since the checkpoint was written)"};
    }
  } else {
    ctx.doc.phase = phase;
    ctx.doc.plan_hash = hash;
    ctx.doc.sweep = plan.sweep;
    ctx.doc.axes = plan.axes;
    ctx.doc.seed = plan.seed;
    ctx.doc.rows_per_shard = plan.rows_per_shard;
    for (const dram::ModuleProfile& mod : plan.modules) {
      ctx.doc.modules.emplace_back(mod.name, mod.rows_per_bank);
    }
  }
  ctx.doc.planned_shards = planned_shards;
  return ctx;
}

/// Execution context of one run: the injected pool/arenas (vppd's warm
/// sessions) or a locally built, right-sized pair. Member order matters:
/// arenas must outlive the pool (its destructor drains queued jobs that
/// touch their worker's arena).
struct Exec {
  std::unique_ptr<common::WorkerLocal<SessionArena>> own_arenas;
  std::unique_ptr<common::ThreadPool> own_pool;
  common::WorkerLocal<SessionArena>* arenas = nullptr;
  common::ThreadPool* pool = nullptr;
};

Exec make_exec(const CampaignEngine::Execution& injected, int jobs,
               std::size_t planned_jobs) {
  Exec exec;
  if (injected.pool != nullptr && injected.arenas != nullptr) {
    exec.arenas = injected.arenas;
    exec.pool = injected.pool;
    return exec;
  }
  const unsigned workers = workers_for(jobs, planned_jobs);
  exec.own_arenas = std::make_unique<common::WorkerLocal<SessionArena>>(workers);
  exec.own_pool = std::make_unique<common::ThreadPool>(workers);
  exec.arenas = exec.own_arenas.get();
  exec.pool = exec.own_pool.get();
  return exec;
}

// --- Phase traits ------------------------------------------------------------
// One trait set per characterization phase binds the shard primitive, the
// CellStore entry points, and the manifest payload vector; the generic
// runner below is phase-agnostic.

struct HammerTraits {
  using RowResult = harness::RowHammerRowResult;
  using Cell = HammerCell;
  using Grid = HammerGrid;
  static constexpr JobPhase kPhase = JobPhase::kRowHammer;
  static std::vector<RowResult>& rows(ManifestShard& s) { return s.hammer; }
  static const std::vector<RowResult>& rows(const ManifestShard& s) {
    return s.hammer;
  }
  static bool lookup(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, std::uint32_t row,
                     RowResult* out) {
    return store.lookup_hammer(profile, point, row, out);
  }
  static void insert(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, const RowResult& row) {
    store.store_hammer(profile, point, row);
  }
  static common::Expected<Cell> run(softmc::Session& session,
                                    const SweepConfig& sweep,
                                    const CampaignAxes& axes,
                                    std::uint64_t seed, const AxisPoint& point,
                                    std::span<const std::uint32_t> rows,
                                    std::span<const dram::DataPattern> wcdp,
                                    const common::CancelToken& cancel) {
    if (point.pattern_hash != 0) {
      const harness::PatternSpec* spec = axes.find_pattern(point.pattern_hash);
      if (spec == nullptr) {
        return common::Error{common::ErrorCode::kInvalidArgument,
                             "campaign point references a pattern hash absent "
                             "from the pattern axis"};
      }
      return run_pattern_rows(session, sweep, seed, point, *spec, rows, wcdp,
                              cancel);
    }
    return run_hammer_rows(session, sweep, seed, point, rows, wcdp, cancel);
  }
};

struct TrcdTraits {
  using RowResult = harness::TrcdRowResult;
  using Cell = TrcdCell;
  using Grid = TrcdGrid;
  static constexpr JobPhase kPhase = JobPhase::kTrcd;
  static std::vector<RowResult>& rows(ManifestShard& s) { return s.trcd; }
  static const std::vector<RowResult>& rows(const ManifestShard& s) {
    return s.trcd;
  }
  static bool lookup(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, std::uint32_t row,
                     RowResult* out) {
    return store.lookup_trcd(profile, point, row, out);
  }
  static void insert(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, const RowResult& row) {
    store.store_trcd(profile, point, row);
  }
  static common::Expected<Cell> run(softmc::Session& session,
                                    const SweepConfig& sweep,
                                    const CampaignAxes&, std::uint64_t seed,
                                    const AxisPoint& point,
                                    std::span<const std::uint32_t> rows,
                                    std::span<const dram::DataPattern>,
                                    const common::CancelToken& cancel) {
    return run_trcd_rows(session, sweep, seed, point, rows, cancel);
  }
};

struct RetentionTraits {
  using RowResult = harness::RetentionRowResult;
  using Cell = RetentionCell;
  using Grid = RetentionGrid;
  static constexpr JobPhase kPhase = JobPhase::kRetention;
  static std::vector<RowResult>& rows(ManifestShard& s) { return s.retention; }
  static const std::vector<RowResult>& rows(const ManifestShard& s) {
    return s.retention;
  }
  static bool lookup(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, std::uint32_t row,
                     RowResult* out) {
    return store.lookup_retention(profile, point, row, out);
  }
  static void insert(CellStore& store, const dram::ModuleProfile& profile,
                     const AxisPoint& point, const RowResult& row) {
    store.store_retention(profile, point, row);
  }
  static common::Expected<Cell> run(softmc::Session& session,
                                    const SweepConfig& sweep,
                                    const CampaignAxes&, std::uint64_t seed,
                                    const AxisPoint& point,
                                    std::span<const std::uint32_t> rows,
                                    std::span<const dram::DataPattern>,
                                    const common::CancelToken& cancel) {
    return run_retention_rows(session, sweep, seed, point, rows, cancel);
  }
};

/// Resolved WCDP prep of one module (hammer phase A): restored from a
/// manifest or CellStore, or computed by a prep job.
struct PrepState {
  std::vector<dram::DataPattern> wcdp;
  bool counted = false;  ///< a prep session ran (restored-from-store: false)
  softmc::CommandCounts counts;
  bool restored = false;   ///< already recorded in the manifest
  bool submitted = false;  ///< a prep job is in flight
  std::future<common::Expected<WcdpPrep>> future;
};

/// One (module, point, shard) unit through the resolve pipeline.
template <typename Traits>
struct UnitState {
  bool resolved = false;    ///< rows fully populated
  bool in_manifest = false; ///< restored from the manifest (no re-append)
  bool counted = false;     ///< a session ran; counts are meaningful
  bool submitted = false;
  bool budget_skipped = false;  ///< max_new_shards exhausted
  softmc::CommandCounts counts;
  std::vector<typename Traits::RowResult> rows;  ///< full shard, merged
  std::vector<std::uint32_t> missing;       ///< row addresses to compute
  std::vector<std::size_t> missing_index;   ///< their indices within the shard
  std::future<common::Expected<typename Traits::Cell>> future;
};

template <typename Traits>
common::Expected<std::vector<typename Traits::Grid>> run_grid_phase(
    const CampaignPlan& plan, CellStore* store,
    const CampaignEngine::Execution& injected) {
  constexpr bool kHasPrep = Traits::kPhase == JobPhase::kRowHammer;
  const SweepConfig& sweep = plan.sweep;
  const std::uint64_t seed = plan.seed;

  VPP_ASSIGN_OR_RETURN(std::vector<ModulePlan> plans,
                       plan_modules(plan, Traits::kPhase));

  std::uint64_t planned_shards = 0;
  std::size_t planned_jobs = 0;
  for (const ModulePlan& mp : plans) {
    planned_shards += mp.points.size() * mp.shards.size();
    planned_jobs +=
        (kHasPrep ? 1 : 0) + mp.points.size() * mp.shards.size();
  }

  VPP_ASSIGN_OR_RETURN(ManifestCtx manifest,
                       init_manifest(plan, Traits::kPhase, planned_shards));

  Exec exec = make_exec(injected, plan.jobs, planned_jobs);
  auto& arenas = *exec.arenas;
  auto& pool = *exec.pool;

  std::optional<Error> first_error;
  std::vector<PrepState> preps(plans.size());

  // Phase A (hammer only): resolve each module's WCDP prep -- manifest
  // record, then CellStore, then a prep job; all prep jobs in flight at
  // once, like the pre-engine driver.
  if constexpr (kHasPrep) {
    for (std::size_t m = 0; m < plans.size(); ++m) {
      const dram::ModuleProfile& profile = plan.modules[m];
      if (const ManifestWcdp* rec = manifest.find_wcdp(profile.name)) {
        preps[m].wcdp = rec->wcdp;
        preps[m].counted = rec->counted;
        preps[m].counts = rec->counts;
        preps[m].restored = true;
        continue;
      }
      if (store != nullptr && store->lookup_wcdp(profile, &preps[m].wcdp)) {
        continue;  // served from the store: no session, not counted
      }
      if (plan.cancel.cancelled()) {
        // Record, don't return: already-submitted preps must drain below
        // (an injected pool may outlive this call's captures otherwise).
        first_error =
            Error{ErrorCode::kCancelled, "sweep cancelled before WCDP prep"}
                .with_module(profile.name);
        break;
      }
      preps[m].submitted = true;
      preps[m].future = pool.submit(
          [&arenas, &pool, &profile, &sweep, seed,
           nominal = plans[m].nominal_vpp,
           rows = plans[m].rows]() -> common::Expected<WcdpPrep> {
            return run_wcdp_prep(arenas.local(pool).acquire(profile), sweep,
                                 seed, nominal, *rows);
          });
    }
  }

  // Compile the unit table up front so lambda captures stay stable.
  std::vector<std::vector<UnitState<Traits>>> units(plans.size());
  for (std::size_t m = 0; m < plans.size(); ++m) {
    units[m].resize(plans[m].points.size() * plans[m].shards.size());
  }
  std::uint32_t new_shards = 0;

  // Submission: drain module m's prep (in order), then fan out its
  // (point, shard) units. Units resolve against the manifest first, then
  // row-by-row against the CellStore (on this thread, in unit order, so
  // store hit/miss accounting is deterministic), and only the still-missing
  // rows are computed.
  for (std::size_t m = 0; m < plans.size(); ++m) {
    const dram::ModuleProfile& profile = plan.modules[m];
    if constexpr (kHasPrep) {
      if (preps[m].submitted) {
        auto prep = preps[m].future.get();
        if (!prep) {
          if (!first_error) first_error = std::move(prep).error();
          continue;
        }
        preps[m].wcdp = std::move(prep->wcdp);
        preps[m].counts = prep->counts;
        preps[m].counted = true;
        if (store != nullptr) store->store_wcdp(profile, preps[m].wcdp);
      }
      if (manifest.enabled && !preps[m].restored && !first_error) {
        ManifestWcdp record;
        record.module = profile.name;
        record.wcdp = preps[m].wcdp;
        record.counted = preps[m].counted;
        record.counts = preps[m].counts;
        if (auto st = manifest.append_wcdp(std::move(record)); !st.ok()) {
          if (!first_error) first_error = std::move(st).error();
        }
      }
    }
    if (first_error) continue;  // keep draining preps; stop submitting units

    const std::vector<std::uint32_t>& rows = *plans[m].rows;
    for (std::size_t p = 0; p < plans[m].points.size(); ++p) {
      const AxisPoint& point = plans[m].points[p];
      for (std::size_t s = 0; s < plans[m].shards.size(); ++s) {
        const ShardSpec shard = plans[m].shards[s];
        UnitState<Traits>& unit = units[m][p * plans[m].shards.size() + s];
        if (const ManifestShard* rec = manifest.find_shard(
                profile.name, point, static_cast<std::uint32_t>(shard.begin),
                static_cast<std::uint32_t>(shard.end))) {
          unit.resolved = true;
          unit.in_manifest = true;
          unit.counted = rec->counted;
          unit.counts = rec->counts;
          unit.rows = Traits::rows(*rec);
          continue;
        }
        const std::size_t size = shard.end - shard.begin;
        unit.rows.resize(size);
        std::vector<dram::DataPattern> missing_wcdp;
        for (std::size_t i = 0; i < size; ++i) {
          const std::uint32_t row = rows[shard.begin + i];
          typename Traits::RowResult cached;
          if (store != nullptr &&
              Traits::lookup(*store, profile, point, row, &cached)) {
            unit.rows[i] = std::move(cached);
          } else {
            unit.missing.push_back(row);
            unit.missing_index.push_back(i);
            if constexpr (kHasPrep) {
              missing_wcdp.push_back(preps[m].wcdp[shard.begin + i]);
            }
          }
        }
        if (unit.missing.empty()) {
          unit.resolved = true;  // fully served from the store; not counted
          continue;
        }
        if (plan.max_new_shards != 0 && new_shards >= plan.max_new_shards) {
          unit.budget_skipped = true;
          continue;
        }
        ++new_shards;
        unit.submitted = true;
        unit.future = pool.submit(
            [&arenas, &pool, &profile, &sweep, &axes = plan.axes, seed, point,
             cancel = plan.cancel, missing = unit.missing,
             wcdp = std::move(missing_wcdp)] {
              return Traits::run(arenas.local(pool).acquire(profile), sweep,
                                 axes, seed, point, std::span(missing),
                                 std::span(wcdp), cancel);
            });
      }
    }
  }

  // Drain every in-flight unit in (module, point, shard) order -- even after
  // a failure, so a shared pool never runs jobs whose captures are gone and
  // completed work still reaches the checkpoint. The first failing unit in
  // this fixed order is the campaign's error.
  for (std::size_t m = 0; m < plans.size(); ++m) {
    const dram::ModuleProfile& profile = plan.modules[m];
    for (std::size_t p = 0; p < plans[m].points.size(); ++p) {
      const AxisPoint& point = plans[m].points[p];
      for (std::size_t s = 0; s < plans[m].shards.size(); ++s) {
        const ShardSpec shard = plans[m].shards[s];
        UnitState<Traits>& unit = units[m][p * plans[m].shards.size() + s];
        if (unit.budget_skipped) {
          if (!first_error) {
            first_error = Error{ErrorCode::kCancelled,
                                "campaign shard budget exhausted "
                                "(max_new_shards reached)"}
                              .with_module(profile.name);
          }
          continue;
        }
        if (unit.submitted) {
          auto cell = unit.future.get();
          if (!cell) {
            if (!first_error) first_error = std::move(cell).error();
            continue;
          }
          unit.counted = true;
          unit.counts = cell->counts;
          for (std::size_t k = 0; k < unit.missing.size(); ++k) {
            unit.rows[unit.missing_index[k]] = cell->rows[k];
            if (store != nullptr) {
              Traits::insert(*store, profile, point,
                             unit.rows[unit.missing_index[k]]);
            }
          }
          unit.resolved = true;
        }
        if (unit.resolved && !unit.in_manifest && manifest.enabled) {
          ManifestShard record;
          record.module = profile.name;
          record.point = point;
          record.row_begin = static_cast<std::uint32_t>(shard.begin);
          record.row_end = static_cast<std::uint32_t>(shard.end);
          record.counted = unit.counted;
          record.counts = unit.counts;
          Traits::rows(record) = unit.rows;
          if (auto st = manifest.append_shard(std::move(record)); !st.ok()) {
            if (!first_error) first_error = std::move(st).error();
          }
        }
      }
    }
  }
  if (first_error) return *std::move(first_error);

  // Assembly in (module, point, shard) order: instrumentation job order and
  // per-row series match the pre-engine drivers exactly.
  std::vector<typename Traits::Grid> grids;
  grids.reserve(plans.size());
  for (std::size_t m = 0; m < plans.size(); ++m) {
    const dram::ModuleProfile& profile = plan.modules[m];
    typename Traits::Grid grid;
    grid.module_name = profile.name;
    if constexpr (std::is_same_v<typename Traits::Grid, HammerGrid>) {
      grid.mfr = profile.mfr;
      grid.vppmin_v = profile.vppmin_v;
      grid.wcdp = preps[m].wcdp;
      if (preps[m].counted) grid.instrumentation.add_job(preps[m].counts);
    } else if constexpr (std::is_same_v<typename Traits::Grid, TrcdGrid>) {
      grid.vppmin_v = profile.vppmin_v;
    } else {
      grid.mfr = profile.mfr;
    }
    grid.rows = *plans[m].rows;
    grid.points = plans[m].points;
    grid.cells.resize(plans[m].points.size());
    for (std::size_t p = 0; p < plans[m].points.size(); ++p) {
      grid.cells[p].resize(grid.rows.size());
      for (std::size_t s = 0; s < plans[m].shards.size(); ++s) {
        const ShardSpec shard = plans[m].shards[s];
        UnitState<Traits>& unit = units[m][p * plans[m].shards.size() + s];
        if (unit.counted) grid.instrumentation.add_job(unit.counts);
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          grid.cells[p][i] = std::move(unit.rows[i - shard.begin]);
        }
      }
    }
    grids.push_back(std::move(grid));
  }
  return grids;
}

/// run_campaign_shards for one phase: the leased-subset variant of
/// run_grid_phase. Same pool/arena structure, same stream seeds, but no
/// manifest and no per-row CellStore resolve -- leases are disjoint, so
/// every row of every named shard is computed fresh and every returned
/// record carries counted=true, exactly like a storeless single-host run.
template <typename Traits>
common::Expected<CampaignShardBatch> run_shard_subset(
    const CampaignPlan& plan, const std::vector<std::uint64_t>& indices,
    CellStore* store, const CampaignEngine::Execution& injected) {
  constexpr bool kHasPrep = Traits::kPhase == JobPhase::kRowHammer;
  const SweepConfig& sweep = plan.sweep;
  const std::uint64_t seed = plan.seed;

  VPP_ASSIGN_OR_RETURN(std::vector<ModulePlan> plans,
                       plan_modules(plan, Traits::kPhase));

  // Map flat grid indices back to (module, point, shard).
  std::vector<std::uint64_t> offsets(plans.size() + 1, 0);
  for (std::size_t m = 0; m < plans.size(); ++m) {
    offsets[m + 1] =
        offsets[m] + plans[m].points.size() * plans[m].shards.size();
  }
  std::vector<std::uint64_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  struct Unit {
    std::size_t m = 0;
    std::size_t p = 0;
    std::size_t s = 0;
  };
  std::vector<Unit> subset;
  subset.reserve(sorted.size());
  std::vector<bool> module_used(plans.size(), false);
  for (const std::uint64_t index : sorted) {
    if (index >= offsets.back()) {
      return Error{ErrorCode::kInvalidArgument,
                   "shard index " + std::to_string(index) +
                       " is outside the campaign grid (" +
                       std::to_string(offsets.back()) + " shards)"};
    }
    Unit unit;
    while (offsets[unit.m + 1] <= index) ++unit.m;
    const std::uint64_t local = index - offsets[unit.m];
    unit.p = static_cast<std::size_t>(local / plans[unit.m].shards.size());
    unit.s = static_cast<std::size_t>(local % plans[unit.m].shards.size());
    module_used[unit.m] = true;
    subset.push_back(unit);
  }

  CampaignShardBatch batch;
  Exec exec = make_exec(injected, plan.jobs, subset.size());
  auto& arenas = *exec.arenas;
  auto& pool = *exec.pool;

  // Phase A (hammer only): resolve the WCDP prep of every referenced
  // module, preferring the worker's memo store so one worker records each
  // module's prep at most once across its leases.
  std::vector<PrepState> preps(plans.size());
  if constexpr (kHasPrep) {
    for (std::size_t m = 0; m < plans.size(); ++m) {
      if (!module_used[m]) continue;
      const dram::ModuleProfile& profile = plan.modules[m];
      if (store != nullptr && store->lookup_wcdp(profile, &preps[m].wcdp)) {
        continue;  // prep already computed (and recorded) by a prior batch
      }
      if (plan.cancel.cancelled()) {
        return Error{ErrorCode::kCancelled, "sweep cancelled before WCDP prep"}
            .with_module(profile.name);
      }
      auto prep =
          pool.submit([&arenas, &pool, &profile, &sweep, seed,
                       nominal = plans[m].nominal_vpp,
                       rows = plans[m].rows]() -> common::Expected<WcdpPrep> {
                return run_wcdp_prep(arenas.local(pool).acquire(profile),
                                     sweep, seed, nominal, *rows);
              })
              .get();
      if (!prep) return std::move(prep).error();
      preps[m].wcdp = std::move(prep->wcdp);
      preps[m].counts = prep->counts;
      preps[m].counted = true;
      if (store != nullptr) store->store_wcdp(profile, preps[m].wcdp);
      ManifestWcdp record;
      record.module = profile.name;
      record.wcdp = preps[m].wcdp;
      record.counted = true;
      record.counts = preps[m].counts;
      batch.wcdp.push_back(std::move(record));
    }
  }

  // Fan out the subset, then drain it in canonical order; the first failing
  // unit in that order is the batch's error, like the engine.
  std::vector<std::future<common::Expected<typename Traits::Cell>>> futures;
  futures.reserve(subset.size());
  for (const Unit& unit : subset) {
    const dram::ModuleProfile& profile = plan.modules[unit.m];
    const AxisPoint& point = plans[unit.m].points[unit.p];
    const ShardSpec shard = plans[unit.m].shards[unit.s];
    const std::vector<std::uint32_t>& rows = *plans[unit.m].rows;
    std::vector<std::uint32_t> shard_rows(rows.begin() + shard.begin,
                                          rows.begin() + shard.end);
    std::vector<dram::DataPattern> shard_wcdp;
    if constexpr (kHasPrep) {
      shard_wcdp.assign(preps[unit.m].wcdp.begin() + shard.begin,
                        preps[unit.m].wcdp.begin() + shard.end);
    }
    futures.push_back(pool.submit(
        [&arenas, &pool, &profile, &sweep, &axes = plan.axes, seed, point,
         cancel = plan.cancel, rows_in = std::move(shard_rows),
         wcdp_in = std::move(shard_wcdp)] {
          return Traits::run(arenas.local(pool).acquire(profile), sweep, axes,
                             seed, point, std::span(rows_in),
                             std::span(wcdp_in), cancel);
        }));
  }
  std::optional<Error> first_error;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    auto cell = futures[i].get();
    if (!cell) {
      if (!first_error) first_error = std::move(cell).error();
      continue;
    }
    if (first_error) continue;
    const Unit& unit = subset[i];
    const ShardSpec shard = plans[unit.m].shards[unit.s];
    ManifestShard record;
    record.module = plan.modules[unit.m].name;
    record.point = plans[unit.m].points[unit.p];
    record.row_begin = static_cast<std::uint32_t>(shard.begin);
    record.row_end = static_cast<std::uint32_t>(shard.end);
    record.counted = true;
    record.counts = cell->counts;
    Traits::rows(record) = std::move(cell->rows);
    batch.shards.push_back(std::move(record));
  }
  if (first_error) return *std::move(first_error);
  return batch;
}

}  // namespace

common::Expected<std::vector<ShardCoord>> compile_campaign_shards(
    const CampaignPlan& plan, JobPhase phase) {
  VPP_ASSIGN_OR_RETURN(std::vector<ModulePlan> plans,
                       plan_modules(plan, phase));
  std::vector<ShardCoord> grid;
  std::uint64_t index = 0;
  for (std::size_t m = 0; m < plans.size(); ++m) {
    for (std::size_t p = 0; p < plans[m].points.size(); ++p) {
      for (std::size_t s = 0; s < plans[m].shards.size(); ++s) {
        ShardCoord coord;
        coord.index = index++;
        coord.module_index = m;
        coord.module = plan.modules[m].name;
        coord.point = plans[m].points[p];
        coord.row_begin = static_cast<std::uint32_t>(plans[m].shards[s].begin);
        coord.row_end = static_cast<std::uint32_t>(plans[m].shards[s].end);
        grid.push_back(std::move(coord));
      }
    }
  }
  return grid;
}

common::Expected<CampaignShardBatch> run_campaign_shards(
    const CampaignPlan& plan, JobPhase phase,
    const std::vector<std::uint64_t>& indices, CellStore* store,
    CampaignExecution exec) {
  switch (phase) {
    case JobPhase::kRowHammer:
      return run_shard_subset<HammerTraits>(plan, indices, store, exec);
    case JobPhase::kTrcd:
      return run_shard_subset<TrcdTraits>(plan, indices, store, exec);
    case JobPhase::kRetention:
      return run_shard_subset<RetentionTraits>(plan, indices, store, exec);
    case JobPhase::kWcdp:
      break;
  }
  return Error{ErrorCode::kInvalidArgument,
               "run_campaign_shards: wcdp is not a shardable phase"};
}

CampaignEngine::CampaignEngine(CampaignPlan plan, CellStore* store,
                               Execution exec)
    : plan_(std::move(plan)), store_(store), exec_(exec) {}

common::Expected<std::vector<HammerGrid>> CampaignEngine::run_hammer() {
  return run_grid_phase<HammerTraits>(plan_, store_, exec_);
}

common::Expected<std::vector<TrcdGrid>> CampaignEngine::run_trcd() {
  return run_grid_phase<TrcdTraits>(plan_, store_, exec_);
}

common::Expected<std::vector<RetentionGrid>> CampaignEngine::run_retention() {
  return run_grid_phase<RetentionTraits>(plan_, store_, exec_);
}

namespace {

/// One full per-module RowHammer sweep (WCDP prep + every usable level),
/// run serially in sessions that carry the attempt's fault injector and a
/// trace ring. On failure, `failure_dump` holds the failing session's ring
/// with the error recorded -- captured before the session is torn down.
/// Moved verbatim from core/resilient_study: the whole-cell job_stream_seed
/// keying and the serial session-per-level structure are part of the
/// resilient campaign's byte-compatibility contract.
common::Expected<ModuleSweepResult> attempt_module_sweep(
    const dram::ModuleProfile& profile, const SweepConfig& sweep,
    std::uint64_t seed, std::size_t trace_capacity,
    softmc::FaultInjector* injector, SweepInstrumentation& instr,
    softmc::TraceDump& failure_dump, bool& has_failure_dump) {
  const std::vector<double> levels =
      usable_vpp_levels(sweep, profile.vppmin_v);
  if (levels.empty()) {
    return Error{ErrorCode::kNoUsableLevels,
                 "no usable VPP levels for module " + profile.name}
        .with_module(profile.name);
  }
  const double nominal = levels.front();

  const auto rig_session = [&](softmc::Session& session, double vpp_v,
                               JobPhase phase) -> common::Status {
    session.enable_trace(trace_capacity);
    if (injector != nullptr) session.set_fault_injector(injector);
    session.set_auto_refresh(false);
    VPP_RETURN_IF_ERROR(session.set_temperature(common::kHammerTestTempC));
    VPP_RETURN_IF_ERROR(session.set_vpp(vpp_v));
    session.set_noise_stream(
        job_stream_seed(seed, profile.seed, vpp_millivolts(vpp_v), phase));
    return common::Status::ok_status();
  };
  const auto fail = [&](softmc::Session& session,
                        common::Error error) -> common::Error {
    failure_dump = softmc::capture_trace_dump(session, &error);
    has_failure_dump = true;
    instr.add_job(session.counters());
    return error;
  };

  ModuleSweepResult result;
  result.module_name = profile.name;
  result.mfr = profile.mfr;
  result.vppmin_v = profile.vppmin_v;
  result.vpp_levels = levels;

  // Phase A: row sampling + per-row WCDP at the nominal level.
  std::vector<std::uint32_t> rows;
  std::vector<dram::DataPattern> wcdp;
  {
    softmc::Session session(profile);
    if (auto st = rig_session(session, nominal, JobPhase::kWcdp); !st.ok()) {
      return fail(session,
                  std::move(st).error().with_module(profile.name).with_context(
                      "wcdp session setup"));
    }
    rows = sweep.sampling.sample(session.module().mapping());
    if (rows.empty()) {
      return fail(session,
                  Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
                      .with_module(profile.name));
    }
    if (sweep.determine_wcdp) {
      auto found =
          harness::find_wcdp_hammer_rows(session, sweep.sampling.bank, rows);
      if (!found) {
        return fail(session, std::move(found)
                                 .error()
                                 .with_module(profile.name)
                                 .with_context("wcdp determination"));
      }
      wcdp = std::move(*found);
    } else {
      wcdp.assign(rows.size(), dram::DataPattern::kCheckerAA);
    }
    instr.add_job(session.counters());
  }
  result.rows.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    result.rows[i].row = rows[i];
    result.rows[i].wcdp = wcdp[i];
  }

  // Phase B: one session per VPP level, highest first.
  for (const double vpp : levels) {
    softmc::Session session(profile);
    if (auto st = rig_session(session, vpp, JobPhase::kRowHammer); !st.ok()) {
      return fail(session,
                  std::move(st)
                      .error()
                      .with_module(profile.name)
                      .with_vpp_mv(
                          static_cast<std::int64_t>(vpp_millivolts(vpp)))
                      .with_context("hammer session setup"));
    }
    harness::RowHammerTest test(session, sweep.hammer);
    auto level = test.test_rows(sweep.sampling.bank, rows, wcdp);
    if (!level) {
      return fail(session, std::move(level)
                               .error()
                               .with_module(profile.name)
                               .with_vpp_mv(static_cast<std::int64_t>(
                                   vpp_millivolts(vpp))));
    }
    instr.add_job(session.counters());
    for (std::size_t i = 0; i < level->size(); ++i) {
      result.rows[i].hc_first.push_back((*level)[i].hc_first);
      result.rows[i].ber.push_back((*level)[i].ber);
    }
    result.instrumentation.add_job(session.counters());
  }
  return result;
}

}  // namespace

CampaignResult CampaignEngine::run_resilient(const softmc::FaultPlan& faults,
                                             const harness::RetryPolicy& retry,
                                             std::size_t trace_capacity) {
  CampaignResult campaign;
  campaign.modules.reserve(plan_.modules.size());

  for (const dram::ModuleProfile& profile : plan_.modules) {
    ModuleCampaignResult outcome;
    outcome.module_name = profile.name;

    softmc::FaultInjector injector(faults);
    softmc::FaultInjector* active = faults.empty() ? nullptr : &injector;

    const std::uint32_t budget = retry.max_attempts > 0 ? retry.max_attempts : 1;
    for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
      // Re-salting the draws means a retry faces *different* fault sites
      // than the attempt that failed -- deterministic progress instead of
      // deterministic re-failure.
      injector.set_attempt(attempt);
      outcome.attempts = attempt + 1;
      if (attempt > 0) ++campaign.instrumentation.retries;

      auto sweep = attempt_module_sweep(profile, plan_.sweep, plan_.seed,
                                        trace_capacity, active,
                                        campaign.instrumentation, outcome.dump,
                                        outcome.has_dump);
      outcome.injections = injector.counts();
      if (sweep) {
        outcome.completed = true;
        outcome.error_code = ErrorCode::kUnknown;
        outcome.error_message.clear();
        outcome.has_dump = false;
        outcome.sweep = std::move(*sweep);
        break;
      }
      outcome.error_code = sweep.error().code;
      outcome.error_message = sweep.error().to_string();
      if (!retry.should_retry(sweep.error().code, attempt + 1)) break;
    }

    if (!outcome.completed) {
      ++campaign.instrumentation.quarantined_modules;
      harness::QuarantineRecord record;
      record.module = profile.name;
      record.code = outcome.error_code;
      record.message = outcome.error_message;
      record.attempts = outcome.attempts;
      campaign.quarantines.push_back(std::move(record));
    }
    campaign.modules.push_back(std::move(outcome));
  }
  return campaign;
}

}  // namespace vppstudy::core
