// The campaign axis vocabulary: the coordinates a characterization cell can
// vary over beyond the paper's single VPP axis -- temperature, hammer count,
// and aggressor on-time (ACT-to-ACT spacing), the cross-product "A Deeper
// Look into RowHammer's Sensitivities" explores.
//
// The contract that keeps every historical output byte-identical: an axis
// value equal to its phase default *normalizes to zero* and the per-cell
// noise-stream key stays the legacy 5-tuple
//   hash_key({seed, module seed, VPP mV, phase, row}).
// Only a genuinely off-default coordinate extends the tuple with its axis
// words. A VPP-only campaign (or one that spells out the defaults, e.g.
// temperatures {50} for a hammer sweep) therefore reproduces the exact
// pre-axis results, and caches keyed by the same rule share those cells.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/pattern_spec.hpp"

namespace vppstudy::core {

/// The experiment family a job belongs to; part of its stream key so the
/// same (module, VPP) cell draws independent noise in different sweeps.
enum class JobPhase : std::uint64_t {
  kWcdp = 1,
  kRowHammer = 2,
  kTrcd = 3,
  kRetention = 4,
};

/// The methodology temperature of a phase (section 4.1): 50C for hammer and
/// tRCD, 80C for retention.
[[nodiscard]] double default_phase_temperature(JobPhase phase) noexcept;

/// One grid coordinate. Zero in a non-VPP field means "phase default":
/// default_phase_temperature for temperature, SweepConfig::hammer.ber_hc for
/// the hammer count, the nominal tRC spacing for the ACT-to-ACT on-time.
struct AxisPoint {
  double vpp_v = 0.0;
  double temperature_c = 0.0;    ///< 0 = phase default (50C / 80C)
  std::uint64_t hammer_count = 0;  ///< 0 = the sweep's BER hammer count
  double act_to_act_ns = 0.0;    ///< 0 = nominal tRC aggressor spacing
  /// harness::PatternSpec::spec_hash of a non-uniform attack pattern, or 0
  /// for the uniform study hammer. The spec itself lives in
  /// CampaignAxes::patterns; the point carries only its identity.
  std::uint64_t pattern_hash = 0;

  /// True when every non-VPP coordinate is at its phase default -- the
  /// legacy seed tuple applies.
  [[nodiscard]] bool baseline() const noexcept {
    return temperature_c == 0.0 && hammer_count == 0 && act_to_act_ns == 0.0 &&
           pattern_hash == 0;
  }

  /// Canonical form of this point for `phase`: coordinates equal to the
  /// phase default collapse to 0, and axes the phase does not consult
  /// (hammer count and on-time outside kRowHammer) are dropped. Seeds,
  /// cache keys, and manifest records all key by the normalized point.
  [[nodiscard]] AxisPoint normalized(JobPhase phase,
                                     std::uint64_t default_hammer_count) const;

  /// The temperature the rig actually programs for `phase`.
  [[nodiscard]] double resolved_temperature(JobPhase phase) const noexcept;

  friend bool operator==(const AxisPoint&, const AxisPoint&) = default;
};

/// Millivolt/millidegree/picosecond quantizations: the integer words an
/// AxisPoint contributes to hash keys and manifest records (stable against
/// floating-point drift in level arithmetic, like vpp_millivolts).
[[nodiscard]] std::int64_t temperature_millidegrees(double temp_c) noexcept;
[[nodiscard]] std::int64_t act_to_act_picoseconds(double ns) noexcept;

/// The extra campaign axes beyond VPP; empty vectors mean "phase default
/// only", so a default-constructed CampaignAxes is the paper's VPP-only
/// campaign.
struct CampaignAxes {
  std::vector<double> temperatures_c;
  std::vector<std::uint64_t> hammer_counts;  ///< kRowHammer only
  std::vector<double> act_to_act_ns;         ///< kRowHammer only
  /// Non-uniform attack patterns (kRowHammer only). Each valid spec expands
  /// the grid with a pattern coordinate; the uniform study hammer is NOT
  /// implied -- include uniform_double_sided_spec() explicitly to compare.
  std::vector<harness::PatternSpec> patterns;
  /// True when no extra axis is populated (a pure VPP sweep).
  [[nodiscard]] bool vpp_only() const noexcept {
    return temperatures_c.empty() && hammer_counts.empty() &&
           act_to_act_ns.empty() && patterns.empty();
  }
  /// The spec behind an AxisPoint::pattern_hash, or nullptr.
  [[nodiscard]] const harness::PatternSpec* find_pattern(
      std::uint64_t pattern_hash) const noexcept;
  /// Expand the grid for one phase: VPP-major over `vpp_levels`, then
  /// temperature, hammer count, on-time. Points are normalized (defaults
  /// collapse to 0) and exact duplicates after normalization are dropped,
  /// so axes {50} for a hammer phase yield the same point list as no axis.
  [[nodiscard]] std::vector<AxisPoint> points_for(
      const std::vector<double>& vpp_levels, JobPhase phase,
      std::uint64_t default_hammer_count) const;

  friend bool operator==(const CampaignAxes&, const CampaignAxes&) = default;
};

/// Stream seed of one sampled row at one grid point. Baseline points use the
/// legacy row_stream_seed 5-tuple; off-default points append their axis
/// words -- see the file header for why this split is load-bearing.
[[nodiscard]] std::uint64_t point_stream_seed(std::uint64_t seed,
                                              std::uint64_t module_seed,
                                              JobPhase phase, std::uint32_t row,
                                              const AxisPoint& point) noexcept;

}  // namespace vppstudy::core
