#include "core/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <optional>
#include <utility>

#include "chips/module_db.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;
using common::JsonValue;

softmc::Session& SessionArena::acquire(const dram::ModuleProfile& profile) {
  auto& slot = sessions[profile.name];
  if (slot) {
    slot->reset_for_job();
  } else {
    slot = std::make_unique<softmc::Session>(profile);
  }
  return *slot;
}

std::string_view campaign_phase_name(JobPhase phase) noexcept {
  switch (phase) {
    case JobPhase::kWcdp: return "wcdp";
    case JobPhase::kRowHammer: return "rowhammer";
    case JobPhase::kTrcd: return "trcd";
    case JobPhase::kRetention: return "retention";
  }
  return "unknown";
}

bool campaign_phase_from_name(std::string_view name, JobPhase& out) noexcept {
  constexpr JobPhase kAll[] = {JobPhase::kWcdp, JobPhase::kRowHammer,
                               JobPhase::kTrcd, JobPhase::kRetention};
  for (const JobPhase p : kAll) {
    if (campaign_phase_name(p) == name) {
      out = p;
      return true;
    }
  }
  return false;
}

namespace {

void counts_json(common::JsonWriter& json, const softmc::CommandCounts& c) {
  json.begin_object();
  json.kv("activates", c.activates);
  json.kv("hammer_loops", c.hammer_loops);
  json.kv("hammer_activations", c.hammer_activations);
  json.kv("reads", c.reads);
  json.kv("writes", c.writes);
  json.kv("precharges", c.precharges);
  json.kv("refreshes", c.refreshes);
  json.kv("waits", c.waits);
  json.kv("timing_violations", c.timing_violations);
  json.kv("device_errors", c.device_errors);
  json.kv("simulated_ns", c.simulated_ns);
  json.end_object();
}

[[nodiscard]] softmc::CommandCounts counts_from_json(const JsonValue& v) {
  softmc::CommandCounts c;
  c.activates = v.uint_or("activates", 0);
  c.hammer_loops = v.uint_or("hammer_loops", 0);
  c.hammer_activations = v.uint_or("hammer_activations", 0);
  c.reads = v.uint_or("reads", 0);
  c.writes = v.uint_or("writes", 0);
  c.precharges = v.uint_or("precharges", 0);
  c.refreshes = v.uint_or("refreshes", 0);
  c.waits = v.uint_or("waits", 0);
  c.timing_violations = v.uint_or("timing_violations", 0);
  c.device_errors = v.uint_or("device_errors", 0);
  c.simulated_ns = v.number_or("simulated_ns", 0.0);
  return c;
}

void point_json(common::JsonWriter& json, const AxisPoint& p) {
  json.begin_object();
  json.kv("vpp_v", p.vpp_v);
  json.kv("temperature_c", p.temperature_c);
  json.kv("hammer_count", p.hammer_count);
  json.kv("act_to_act_ns", p.act_to_act_ns);
  // Emitted only for pattern points: pre-pattern manifests stay
  // byte-identical, and old readers ignore the extra key. Hex string because
  // JsonValue stores numbers as doubles (53-bit mantissa).
  if (p.pattern_hash != 0) json.kv("pattern_hash", u64_hex(p.pattern_hash));
  json.end_object();
}

[[nodiscard]] AxisPoint point_from_json(const JsonValue& v) {
  AxisPoint p;
  p.vpp_v = v.number_or("vpp_v", 0.0);
  p.temperature_c = v.number_or("temperature_c", 0.0);
  p.hammer_count = v.uint_or("hammer_count", 0);
  p.act_to_act_ns = v.number_or("act_to_act_ns", 0.0);
  if (const std::string hex = v.string_or("pattern_hash", ""); !hex.empty()) {
    (void)parse_u64_hex(hex, p.pattern_hash);
  }
  return p;
}

[[nodiscard]] bool pattern_from_uint(std::uint64_t v, dram::DataPattern& out) {
  if (v >= dram::kAllPatterns.size()) return false;
  out = static_cast<dram::DataPattern>(v);
  return true;
}

}  // namespace

void campaign_checkpoint_written() {
  static const int budget = [] {
    const char* env = std::getenv("VPP_CAMPAIGN_KILL_AFTER");
    return env != nullptr ? std::atoi(env) : -1;
  }();
  if (budget < 0) return;
  static int writes = 0;
  if (++writes >= budget) std::raise(SIGKILL);
}

std::string u64_hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_u64_hex(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

void manifest_wcdp_json(common::JsonWriter& json, const ManifestWcdp& record) {
  json.begin_object();
  json.kv("module", record.module);
  json.key("patterns").begin_array();
  for (const dram::DataPattern p : record.wcdp) {
    json.value(static_cast<std::uint64_t>(p));
  }
  json.end_array();
  json.kv("counted", record.counted);
  if (record.counted) {
    json.key("counts");
    counts_json(json, record.counts);
  }
  json.end_object();
}

void manifest_shard_json(common::JsonWriter& json, const ManifestShard& s,
                         JobPhase phase) {
  json.begin_object();
  json.kv("module", s.module);
  json.key("point");
  point_json(json, s.point);
  json.kv("row_begin", static_cast<std::uint64_t>(s.row_begin));
  json.kv("row_end", static_cast<std::uint64_t>(s.row_end));
  json.kv("counted", s.counted);
  if (s.counted) {
    json.key("counts");
    counts_json(json, s.counts);
  }
  json.key("rows").begin_array();
  switch (phase) {
    case JobPhase::kWcdp:
      break;
    case JobPhase::kRowHammer:
      for (const harness::RowHammerRowResult& rr : s.hammer) {
        json.begin_object();
        json.kv("row", static_cast<std::uint64_t>(rr.row));
        json.kv("wcdp", static_cast<std::uint64_t>(rr.wcdp));
        json.kv("hc_first", rr.hc_first);
        json.kv("ber", rr.ber);
        json.end_object();
      }
      break;
    case JobPhase::kTrcd:
      for (const harness::TrcdRowResult& rr : s.trcd) {
        json.begin_object();
        json.kv("row", static_cast<std::uint64_t>(rr.row));
        json.kv("wcdp", static_cast<std::uint64_t>(rr.wcdp));
        json.kv("trcd_min_ns", rr.trcd_min_ns);
        json.end_object();
      }
      break;
    case JobPhase::kRetention:
      for (const harness::RetentionRowResult& rr : s.retention) {
        json.begin_object();
        json.kv("row", static_cast<std::uint64_t>(rr.row));
        json.kv("wcdp", static_cast<std::uint64_t>(rr.wcdp));
        json.key("trefw_ms").begin_array();
        for (const double t : rr.trefw_ms) json.value(t);
        json.end_array();
        json.key("ber").begin_array();
        for (const double b : rr.ber) json.value(b);
        json.end_array();
        json.end_object();
      }
      break;
  }
  json.end_array();
  json.end_object();
}

common::Result<ManifestWcdp> parse_manifest_wcdp(const JsonValue& item) {
  const auto fail = [](std::string what) {
    return Error{ErrorCode::kParseError,
                 "campaign manifest: " + std::move(what)};
  };
  if (!item.is_object()) return fail("wcdp entry is not an object");
  ManifestWcdp record;
  record.module = item.string_or("module", "");
  if (record.module.empty()) return fail("wcdp entry missing module");
  const JsonValue* patterns = item.find("patterns");
  if (patterns == nullptr || !patterns->is_array()) {
    return fail("wcdp entry missing 'patterns'");
  }
  for (const JsonValue& p : patterns->items()) {
    dram::DataPattern pattern = dram::DataPattern::kCheckerAA;
    if (!p.is_number() ||
        !pattern_from_uint(static_cast<std::uint64_t>(p.as_number()),
                           pattern)) {
      return fail("wcdp entry has malformed pattern");
    }
    record.wcdp.push_back(pattern);
  }
  record.counted = item.bool_or("counted", false);
  if (const JsonValue* counts = item.find("counts")) {
    record.counts = counts_from_json(*counts);
  }
  return record;
}

common::Result<ManifestShard> parse_manifest_shard(const JsonValue& item,
                                                   JobPhase phase) {
  const auto fail = [](std::string what) {
    return Error{ErrorCode::kParseError,
                 "campaign manifest: " + std::move(what)};
  };
  if (!item.is_object()) return fail("shard entry is not an object");
  ManifestShard shard;
  shard.module = item.string_or("module", "");
  if (shard.module.empty()) return fail("shard entry missing module");
  const JsonValue* point = item.find("point");
  if (point == nullptr || !point->is_object()) {
    return fail("shard entry missing 'point'");
  }
  shard.point = point_from_json(*point);
  shard.row_begin = static_cast<std::uint32_t>(item.uint_or("row_begin", 0));
  shard.row_end = static_cast<std::uint32_t>(item.uint_or("row_end", 0));
  if (shard.row_end < shard.row_begin) {
    return fail("shard entry has inverted row range");
  }
  shard.counted = item.bool_or("counted", false);
  if (const JsonValue* counts = item.find("counts")) {
    shard.counts = counts_from_json(*counts);
  }
  const JsonValue* rows = item.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return fail("shard entry missing 'rows'");
  }
  for (const JsonValue& rv : rows->items()) {
    if (!rv.is_object()) return fail("shard row is not an object");
    dram::DataPattern pattern = dram::DataPattern::kCheckerAA;
    if (!pattern_from_uint(rv.uint_or("wcdp", 0), pattern)) {
      return fail("shard row has malformed wcdp");
    }
    switch (phase) {
      case JobPhase::kWcdp:
        return fail("wcdp phase cannot carry shard rows");
      case JobPhase::kRowHammer: {
        harness::RowHammerRowResult rr;
        rr.row = static_cast<std::uint32_t>(rv.uint_or("row", 0));
        rr.wcdp = pattern;
        rr.hc_first = rv.uint_or("hc_first", 0);
        rr.ber = rv.number_or("ber", 0.0);
        shard.hammer.push_back(rr);
        break;
      }
      case JobPhase::kTrcd: {
        harness::TrcdRowResult rr;
        rr.row = static_cast<std::uint32_t>(rv.uint_or("row", 0));
        rr.wcdp = pattern;
        rr.trcd_min_ns = rv.number_or("trcd_min_ns", 0.0);
        shard.trcd.push_back(rr);
        break;
      }
      case JobPhase::kRetention: {
        harness::RetentionRowResult rr;
        rr.row = static_cast<std::uint32_t>(rv.uint_or("row", 0));
        rr.wcdp = pattern;
        const JsonValue* windows = rv.find("trefw_ms");
        const JsonValue* bers = rv.find("ber");
        if (windows == nullptr || !windows->is_array() || bers == nullptr ||
            !bers->is_array()) {
          return fail("retention shard row missing window arrays");
        }
        for (const JsonValue& w : windows->items()) {
          rr.trefw_ms.push_back(w.as_number());
        }
        for (const JsonValue& b : bers->items()) {
          rr.ber.push_back(b.as_number());
        }
        if (rr.trefw_ms.size() != rr.ber.size()) {
          return fail("retention shard row window/ber size mismatch");
        }
        shard.retention.push_back(std::move(rr));
        break;
      }
    }
  }
  const std::size_t got =
      shard.hammer.size() + shard.trcd.size() + shard.retention.size();
  if (got != shard.row_end - shard.row_begin) {
    return fail("shard row payload does not match its row range");
  }
  return shard;
}

CampaignPlan CampaignPlan::from_study(StudyConfig config) {
  CampaignPlan plan;
  plan.sweep = std::move(config.sweep);
  plan.modules = std::move(config.modules);
  plan.seed = config.seed;
  plan.jobs = config.jobs;
  plan.rows_per_shard = config.rows_per_shard;
  plan.cancel = config.cancel;
  return plan;
}

std::uint64_t CampaignPlan::digest(JobPhase phase) const {
  std::uint64_t h = common::hash_key(
      {0x766361706c616eULL,  // "vcaplan" domain separator
       static_cast<std::uint64_t>(phase), seed,
       static_cast<std::uint64_t>(rows_per_shard)});
  const auto acc = [&h](std::uint64_t w) { h = common::hash_accumulate(h, w); };
  const auto accd = [&acc](double v) { acc(std::bit_cast<std::uint64_t>(v)); };
  acc(sweep.sampling.bank);
  acc(sweep.sampling.chunks);
  acc(sweep.sampling.rows_per_chunk);
  acc(sweep.determine_wcdp ? 1 : 0);
  acc(sweep.hammer.initial_hc);
  acc(sweep.hammer.initial_step);
  acc(sweep.hammer.min_step);
  acc(sweep.hammer.ber_hc);
  acc(static_cast<std::uint64_t>(sweep.hammer.num_iterations));
  accd(sweep.hammer.act_to_act_ns);
  accd(sweep.trcd.start_ns);
  accd(sweep.trcd.step_ns);
  accd(sweep.trcd.max_ns);
  acc(static_cast<std::uint64_t>(sweep.trcd.num_iterations));
  acc(sweep.trcd.column_stride);
  accd(sweep.retention.min_trefw_ms);
  accd(sweep.retention.max_trefw_ms);
  acc(static_cast<std::uint64_t>(sweep.retention.num_iterations));
  acc(sweep.vpp_levels.size());
  for (const double v : sweep.vpp_levels) acc(vpp_millivolts(v));
  acc(axes.temperatures_c.size());
  for (const double t : axes.temperatures_c) {
    acc(static_cast<std::uint64_t>(temperature_millidegrees(t)));
  }
  acc(axes.hammer_counts.size());
  for (const std::uint64_t hc : axes.hammer_counts) acc(hc);
  acc(axes.act_to_act_ns.size());
  for (const double a : axes.act_to_act_ns) {
    acc(static_cast<std::uint64_t>(act_to_act_picoseconds(a)));
  }
  // Folded only when the pattern axis is populated: hash_key's left-fold
  // structure then keeps every pre-pattern plan digest unchanged.
  if (!axes.patterns.empty()) {
    acc(axes.patterns.size());
    for (const harness::PatternSpec& spec : axes.patterns) {
      acc(spec.spec_hash());
    }
  }
  acc(modules.size());
  for (const dram::ModuleProfile& mod : modules) {
    std::uint64_t name_hash = common::kHashInit;
    for (const char c : mod.name) {
      name_hash = common::hash_accumulate(
          name_hash, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    acc(name_hash);
    acc(mod.seed);
    acc(mod.rows_per_bank);
  }
  return h;
}

// --- Grid -> legacy sweep conversions ----------------------------------------
// Byte-exact replicas of the pre-engine reductions: same iteration order,
// same float accumulation order.

ModuleSweepResult HammerGrid::to_sweep() const {
  ModuleSweepResult result;
  result.module_name = module_name;
  result.mfr = mfr;
  result.vppmin_v = vppmin_v;
  result.vpp_levels.reserve(points.size());
  for (const AxisPoint& p : points) result.vpp_levels.push_back(p.vpp_v);
  result.instrumentation = instrumentation;
  result.rows.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    result.rows[i].row = rows[i];
    result.rows[i].wcdp = wcdp[i];
  }
  for (const auto& cell : cells) {
    for (std::size_t i = 0; i < cell.size(); ++i) {
      result.rows[i].hc_first.push_back(cell[i].hc_first);
      result.rows[i].ber.push_back(cell[i].ber);
    }
  }
  return result;
}

TrcdSweepResult TrcdGrid::to_sweep() const {
  TrcdSweepResult result;
  result.module_name = module_name;
  result.vppmin_v = vppmin_v;
  result.vpp_levels.reserve(points.size());
  for (const AxisPoint& p : points) result.vpp_levels.push_back(p.vpp_v);
  result.instrumentation = instrumentation;
  for (const auto& cell : cells) {
    // Module tRCDmin is the max across sampled rows (Table 3 semantics).
    double trcd_min_ns = 0.0;
    for (const harness::TrcdRowResult& rr : cell) {
      trcd_min_ns = std::max(trcd_min_ns, rr.trcd_min_ns);
    }
    result.trcd_min_ns.push_back(trcd_min_ns);
  }
  return result;
}

RetentionSweepResult RetentionGrid::to_sweep() const {
  RetentionSweepResult result;
  result.module_name = module_name;
  result.mfr = mfr;
  result.vpp_levels.reserve(points.size());
  for (const AxisPoint& p : points) result.vpp_levels.push_back(p.vpp_v);
  result.instrumentation = instrumentation;
  const double row_count = static_cast<double>(rows.size());
  for (const auto& cell : cells) {
    std::vector<double> sums;
    std::vector<double> ref_bers;
    for (const harness::RetentionRowResult& rr : cell) {
      if (result.trefw_ms.empty()) result.trefw_ms = rr.trefw_ms;
      if (sums.empty()) sums.assign(rr.ber.size(), 0.0);
      for (std::size_t w = 0; w < rr.ber.size(); ++w) sums[w] += rr.ber[w];
      // Per-row BER at the reference window (closest probed window).
      std::size_t ref = 0;
      for (std::size_t w = 0; w < rr.trefw_ms.size(); ++w) {
        if (std::abs(rr.trefw_ms[w] - result.reference_trefw_ms) <
            std::abs(rr.trefw_ms[ref] - result.reference_trefw_ms)) {
          ref = w;
        }
      }
      ref_bers.push_back(rr.ber[ref]);
    }
    for (double& s : sums) s /= row_count;
    result.mean_ber.push_back(std::move(sums));
    result.row_ber_at_reference.push_back(std::move(ref_bers));
  }
  return result;
}

// --- Manifest serialization --------------------------------------------------

common::JsonWriter campaign_manifest_json(const CampaignManifest& manifest) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::string(CampaignManifest::kSchemaPrefix) +
                        std::to_string(manifest.version));
  json.kv("phase", campaign_phase_name(manifest.phase));
  json.kv("plan_hash", u64_hex(manifest.plan_hash));
  json.kv("seed", u64_hex(manifest.seed));
  json.kv("rows_per_shard", static_cast<std::uint64_t>(manifest.rows_per_shard));
  json.kv("planned_shards", manifest.planned_shards);

  const SweepConfig& sweep = manifest.sweep;
  json.key("sweep").begin_object();
  json.key("vpp_levels").begin_array();
  for (const double v : sweep.vpp_levels) json.value(v);
  json.end_array();
  json.kv("bank", static_cast<std::uint64_t>(sweep.sampling.bank));
  json.kv("chunks", static_cast<std::uint64_t>(sweep.sampling.chunks));
  json.kv("rows_per_chunk",
          static_cast<std::uint64_t>(sweep.sampling.rows_per_chunk));
  json.kv("determine_wcdp", sweep.determine_wcdp);
  json.key("hammer").begin_object();
  json.kv("initial_hc", sweep.hammer.initial_hc);
  json.kv("initial_step", sweep.hammer.initial_step);
  json.kv("min_step", sweep.hammer.min_step);
  json.kv("ber_hc", sweep.hammer.ber_hc);
  json.kv("num_iterations", sweep.hammer.num_iterations);
  json.kv("act_to_act_ns", sweep.hammer.act_to_act_ns);
  json.end_object();
  json.key("trcd").begin_object();
  json.kv("start_ns", sweep.trcd.start_ns);
  json.kv("step_ns", sweep.trcd.step_ns);
  json.kv("max_ns", sweep.trcd.max_ns);
  json.kv("num_iterations", sweep.trcd.num_iterations);
  json.kv("column_stride", static_cast<std::uint64_t>(sweep.trcd.column_stride));
  json.end_object();
  json.key("retention").begin_object();
  json.kv("min_trefw_ms", sweep.retention.min_trefw_ms);
  json.kv("max_trefw_ms", sweep.retention.max_trefw_ms);
  json.kv("num_iterations", sweep.retention.num_iterations);
  json.end_object();
  json.end_object();

  json.key("axes").begin_object();
  json.key("temperatures_c").begin_array();
  for (const double t : manifest.axes.temperatures_c) json.value(t);
  json.end_array();
  json.key("hammer_counts").begin_array();
  for (const std::uint64_t hc : manifest.axes.hammer_counts) json.value(hc);
  json.end_array();
  json.key("act_to_act_ns").begin_array();
  for (const double a : manifest.axes.act_to_act_ns) json.value(a);
  json.end_array();
  // Key emitted only when populated: pre-pattern manifests stay
  // byte-identical.
  if (!manifest.axes.patterns.empty()) {
    json.key("patterns").begin_array();
    for (const harness::PatternSpec& spec : manifest.axes.patterns) {
      harness::pattern_spec_json(json, spec);
    }
    json.end_array();
  }
  json.end_object();

  json.key("modules").begin_array();
  for (const auto& [name, rows_per_bank] : manifest.modules) {
    json.begin_object();
    json.kv("name", name);
    json.kv("rows_per_bank", static_cast<std::uint64_t>(rows_per_bank));
    json.end_object();
  }
  json.end_array();

  json.key("wcdp").begin_array();
  for (const ManifestWcdp& w : manifest.wcdp) {
    manifest_wcdp_json(json, w);
  }
  json.end_array();

  json.key("shards").begin_array();
  for (const ManifestShard& s : manifest.shards) {
    manifest_shard_json(json, s, manifest.phase);
  }
  json.end_array();

  json.end_object();
  return json;
}

common::Result<CampaignManifest> parse_campaign_manifest(const JsonValue& doc) {
  const auto fail = [](std::string what) {
    return Error{ErrorCode::kParseError,
                 "campaign manifest: " + std::move(what)};
  };
  if (!doc.is_object()) return fail("document is not an object");

  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind(CampaignManifest::kSchemaPrefix, 0) != 0) {
    return fail("unrecognized schema '" + schema + "'");
  }
  CampaignManifest m;
  m.version = std::atoi(
      schema.substr(CampaignManifest::kSchemaPrefix.size()).c_str());
  if (m.version < 1 || m.version > CampaignManifest::kVersion) {
    return fail("unsupported version " + std::to_string(m.version));
  }
  if (!campaign_phase_from_name(doc.string_or("phase", ""), m.phase)) {
    return fail("unknown phase '" + doc.string_or("phase", "") + "'");
  }
  if (!parse_u64_hex(doc.string_or("plan_hash", ""), m.plan_hash)) {
    return fail("missing or malformed plan_hash");
  }
  if (!parse_u64_hex(doc.string_or("seed", ""), m.seed)) {
    return fail("missing or malformed seed");
  }
  m.rows_per_shard = static_cast<std::uint32_t>(doc.uint_or("rows_per_shard", 0));
  m.planned_shards = doc.uint_or("planned_shards", 0);

  const JsonValue* sweep = doc.find("sweep");
  if (sweep == nullptr || !sweep->is_object()) {
    return fail("missing 'sweep' object");
  }
  const JsonValue* levels = sweep->find("vpp_levels");
  if (levels == nullptr || !levels->is_array()) {
    return fail("missing 'vpp_levels' array");
  }
  for (const JsonValue& v : levels->items()) {
    if (!v.is_number()) return fail("non-numeric vpp level");
    m.sweep.vpp_levels.push_back(v.as_number());
  }
  m.sweep.sampling.bank = static_cast<std::uint32_t>(sweep->uint_or("bank", 0));
  m.sweep.sampling.chunks =
      static_cast<std::uint32_t>(sweep->uint_or("chunks", 4));
  m.sweep.sampling.rows_per_chunk =
      static_cast<std::uint32_t>(sweep->uint_or("rows_per_chunk", 1024));
  m.sweep.determine_wcdp = sweep->bool_or("determine_wcdp", true);
  if (const JsonValue* hammer = sweep->find("hammer")) {
    m.sweep.hammer.initial_hc =
        hammer->uint_or("initial_hc", m.sweep.hammer.initial_hc);
    m.sweep.hammer.initial_step =
        hammer->uint_or("initial_step", m.sweep.hammer.initial_step);
    m.sweep.hammer.min_step =
        hammer->uint_or("min_step", m.sweep.hammer.min_step);
    m.sweep.hammer.ber_hc = hammer->uint_or("ber_hc", m.sweep.hammer.ber_hc);
    m.sweep.hammer.num_iterations = static_cast<int>(
        hammer->uint_or("num_iterations",
                        static_cast<std::uint64_t>(
                            m.sweep.hammer.num_iterations)));
    m.sweep.hammer.act_to_act_ns =
        hammer->number_or("act_to_act_ns", m.sweep.hammer.act_to_act_ns);
  }
  if (const JsonValue* trcd = sweep->find("trcd")) {
    m.sweep.trcd.start_ns = trcd->number_or("start_ns", m.sweep.trcd.start_ns);
    m.sweep.trcd.step_ns = trcd->number_or("step_ns", m.sweep.trcd.step_ns);
    m.sweep.trcd.max_ns = trcd->number_or("max_ns", m.sweep.trcd.max_ns);
    m.sweep.trcd.num_iterations = static_cast<int>(trcd->uint_or(
        "num_iterations",
        static_cast<std::uint64_t>(m.sweep.trcd.num_iterations)));
    m.sweep.trcd.column_stride = static_cast<std::uint32_t>(
        trcd->uint_or("column_stride", m.sweep.trcd.column_stride));
  }
  if (const JsonValue* ret = sweep->find("retention")) {
    m.sweep.retention.min_trefw_ms =
        ret->number_or("min_trefw_ms", m.sweep.retention.min_trefw_ms);
    m.sweep.retention.max_trefw_ms =
        ret->number_or("max_trefw_ms", m.sweep.retention.max_trefw_ms);
    m.sweep.retention.num_iterations = static_cast<int>(ret->uint_or(
        "num_iterations",
        static_cast<std::uint64_t>(m.sweep.retention.num_iterations)));
  }

  if (const JsonValue* axes = doc.find("axes")) {
    if (const JsonValue* temps = axes->find("temperatures_c")) {
      for (const JsonValue& v : temps->items()) {
        m.axes.temperatures_c.push_back(v.as_number());
      }
    }
    if (const JsonValue* hcs = axes->find("hammer_counts")) {
      for (const JsonValue& v : hcs->items()) {
        m.axes.hammer_counts.push_back(
            static_cast<std::uint64_t>(v.as_number()));
      }
    }
    if (const JsonValue* acts = axes->find("act_to_act_ns")) {
      for (const JsonValue& v : acts->items()) {
        m.axes.act_to_act_ns.push_back(v.as_number());
      }
    }
    if (const JsonValue* pats = axes->find("patterns")) {
      for (const JsonValue& v : pats->items()) {
        VPP_ASSIGN_OR_RETURN(harness::PatternSpec spec,
                             harness::parse_pattern_spec(v));
        m.axes.patterns.push_back(std::move(spec));
      }
    }
  }

  const JsonValue* modules = doc.find("modules");
  if (modules == nullptr || !modules->is_array()) {
    return fail("missing 'modules' array");
  }
  for (const JsonValue& item : modules->items()) {
    if (!item.is_object()) return fail("module entry is not an object");
    const std::string name = item.string_or("name", "");
    if (name.empty()) return fail("module entry missing name");
    m.modules.emplace_back(
        name, static_cast<std::uint32_t>(item.uint_or("rows_per_bank", 0)));
  }

  if (const JsonValue* wcdp = doc.find("wcdp")) {
    for (const JsonValue& item : wcdp->items()) {
      VPP_ASSIGN_OR_RETURN(ManifestWcdp record, parse_manifest_wcdp(item));
      m.wcdp.push_back(std::move(record));
    }
  }

  if (const JsonValue* shards = doc.find("shards")) {
    for (const JsonValue& item : shards->items()) {
      VPP_ASSIGN_OR_RETURN(ManifestShard shard,
                           parse_manifest_shard(item, m.phase));
      m.shards.push_back(std::move(shard));
    }
  }
  return m;
}

common::Result<CampaignManifest> load_campaign_manifest(
    const std::string& path) {
  VPP_ASSIGN_OR_RETURN(JsonValue doc, common::parse_json_file(path));
  return parse_campaign_manifest(doc);
}

bool write_campaign_manifest(const std::string& path,
                             const CampaignManifest& manifest) {
  const std::string tmp = path + ".tmp";
  if (!campaign_manifest_json(manifest).write_file(tmp)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  campaign_checkpoint_written();
  return true;
}

common::Result<CampaignPlan> plan_from_manifest(
    const CampaignManifest& manifest) {
  CampaignPlan plan;
  plan.sweep = manifest.sweep;
  plan.axes = manifest.axes;
  plan.seed = manifest.seed;
  plan.rows_per_shard = manifest.rows_per_shard;
  plan.modules.reserve(manifest.modules.size());
  for (const auto& [name, rows_per_bank] : manifest.modules) {
    auto profile = chips::profile_by_name(name);
    if (!profile) {
      return Error{ErrorCode::kInvalidArgument,
                   "campaign manifest references unknown module '" + name +
                       "'"};
    }
    if (rows_per_bank != 0) profile->rows_per_bank = rows_per_bank;
    plan.modules.push_back(std::move(*profile));
  }
  return plan;
}

}  // namespace vppstudy::core
