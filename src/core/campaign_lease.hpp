// Campaign distribution primitives: the canonical shard grid, the lease
// ledger, and the partial-manifest merge.
//
// A CampaignPlan compiles to a *canonical shard grid* -- the flat
// (module, point, row-range) unit list in the engine's fixed
// (module-major, then point, then shard) order. Distribution never changes
// that grid: a coordinator leases disjoint index subsets of it to workers,
// each worker computes its shards with run_campaign_shards (bit-identical
// to the single-host engine, because every row is a pure function of its
// stream key), and the coordinator merges returned ManifestShard records
// back into one manifest in canonical order. The merged manifest is
// therefore indistinguishable from a single-host checkpoint, and resuming
// the engine over it reproduces the single-host CSV/JSON byte for byte.
//
// Fencing: each lease grant carries a monotonically increasing token and an
// expiry deadline. A crashed or stalled worker's shards expire and are
// re-leased under a *new* token; a late submission under the old token is
// rejected with kLeaseExpired and nothing is merged -- results are never
// double-counted even though (by determinism) a duplicate would carry the
// same bytes. The ledger is versioned JSON persisted beside the manifest
// (campaign_ledger_path) so a restarted coordinator resumes leases too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/json.hpp"
#include "core/campaign.hpp"

namespace vppstudy::core {

// --- Canonical shard grid ----------------------------------------------------

/// One cell of the canonical shard grid: the flat index plus the grid
/// coordinates a ManifestShard record carries.
struct ShardCoord {
  std::uint64_t index = 0;
  std::size_t module_index = 0;  ///< position in CampaignPlan::modules
  std::string module;
  AxisPoint point;  ///< normalized
  std::uint32_t row_begin = 0;  ///< index range into the sampled row list
  std::uint32_t row_end = 0;

  friend bool operator==(const ShardCoord&, const ShardCoord&) = default;
};

/// Compile the plan into the canonical shard grid for `phase` -- the same
/// unit set, in the same order, the engine executes. Fails like the engine
/// does (kNoUsableLevels / kEmptySample).
[[nodiscard]] common::Expected<std::vector<ShardCoord>> compile_campaign_shards(
    const CampaignPlan& plan, JobPhase phase);

/// Coordinate -> grid index lookup (keys quantize the axis doubles the same
/// way stream seeds do, so a manifest record round-tripped through JSON maps
/// back to its cell exactly).
class ShardGridIndex {
 public:
  ShardGridIndex() = default;
  explicit ShardGridIndex(const std::vector<ShardCoord>& grid);

  /// The grid cell a shard record names, or nullptr if it is not a cell of
  /// this campaign.
  [[nodiscard]] const ShardCoord* find(const ManifestShard& shard) const;

 private:
  struct Key {
    std::string module;
    std::int64_t vpp_mv = 0;
    std::int64_t temp_mc = 0;
    std::uint64_t hammer_count = 0;
    std::int64_t act_ps = 0;
    std::uint32_t row_begin = 0;
    std::uint32_t row_end = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  static Key key_of(const std::string& module, const AxisPoint& point,
                    std::uint32_t row_begin, std::uint32_t row_end);
  std::vector<std::pair<Key, const ShardCoord*>> sorted_;
};

// --- Worker-side shard execution ---------------------------------------------

/// The records one worker computed for a leased shard subset: WCDP prep
/// records for modules whose prep this batch had to run (at most one per
/// module per worker -- the CellStore memoizes preps across batches), plus
/// one ManifestShard per leased index. Byte-identical to what a single-host
/// engine run records for the same cells.
struct CampaignShardBatch {
  std::vector<ManifestWcdp> wcdp;
  std::vector<ManifestShard> shards;
};

/// Execute a shard index subset of the canonical grid. Indices are sorted
/// and deduplicated, then run through the same phase primitives (and the
/// same per-point stream seeds) as the engine, on an engine-style pool.
/// `store` is consulted for WCDP preps only (lookup_wcdp/store_wcdp): pass a
/// per-worker memo so repeated leases of one module's shards run its prep
/// once. Row results are always computed (leases are disjoint, so there is
/// nothing to share), hence every returned shard record has counted=true.
[[nodiscard]] common::Expected<CampaignShardBatch> run_campaign_shards(
    const CampaignPlan& plan, JobPhase phase,
    const std::vector<std::uint64_t>& indices, CellStore* store,
    CampaignExecution exec = {});

// --- Lease ledger ------------------------------------------------------------

enum class LeaseState : std::uint8_t { kOpen = 0, kLeased, kDone };

[[nodiscard]] std::string_view lease_state_name(LeaseState state) noexcept;

/// Lease bookkeeping of one grid cell. `worker`/`token`/`expires_at_ms` are
/// meaningful for kLeased; kDone keeps `worker` as the submitter of record.
struct LeaseEntry {
  LeaseState state = LeaseState::kOpen;
  std::string worker;
  std::uint64_t token = 0;
  std::int64_t expires_at_ms = 0;
};

/// Cumulative per-worker accounting. `leased` counts shard grants (not
/// currently-held shards), `expired` counts shards this worker lost to lease
/// expiry, `completed` counts shards it submitted -- so a crashed worker's
/// history survives re-leasing its shards to someone else.
struct LeaseWorkerStats {
  std::string worker;
  std::uint64_t leased = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
};

/// The versioned lease ledger persisted beside the manifest. Entries are
/// parallel to the canonical shard grid; all state transitions are explicit
/// in `now_ms` so expiry and fencing are unit-testable without clocks.
struct CampaignLeaseLedger {
  static constexpr int kVersion = 1;
  static constexpr std::string_view kSchemaPrefix = "vppstudy-campaign-leases/";

  int version = kVersion;
  JobPhase phase = JobPhase::kRowHammer;
  std::uint64_t plan_hash = 0;
  /// Fencing tokens are ledger-scoped and strictly increasing; 0 is never a
  /// valid token.
  std::uint64_t next_token = 1;
  std::vector<LeaseEntry> entries;
  std::vector<LeaseWorkerStats> workers;  ///< first-lease order

  [[nodiscard]] LeaseWorkerStats& worker_stats(const std::string& worker);

  /// Expire every lease past its deadline (entries reopen, the holder's
  /// `expired` count grows). Returns how many expired.
  std::size_t expire_stale(std::int64_t now_ms);

  struct Grant {
    std::uint64_t token = 0;  ///< 0 when no shard was available
    std::vector<std::uint64_t> shards;  ///< canonical order, disjoint
  };
  /// Lease up to `max_shards` open shards to `worker` under one fresh
  /// fencing token. Expires stale leases first.
  ///
  /// Without `modules`, shards are granted in canonical grid order. With
  /// `modules` (one module index per entry, parallel to the grid), grants
  /// are *module-affine*: (1) modules this worker is already working
  /// (live leases or completed shards), then (2) modules no other worker
  /// holds live leases in, then (3) anything still open -- each tier in
  /// canonical order, and the returned grant is sorted. Affinity keeps
  /// concurrent workers on disjoint modules so each module's WCDP prep runs
  /// once fleet-wide instead of once per worker; which worker computes a
  /// shard never affects its bytes, so the merged manifest is unchanged.
  [[nodiscard]] Grant lease(const std::string& worker, std::size_t max_shards,
                            std::int64_t now_ms, std::int64_t ttl_ms,
                            const std::vector<std::size_t>* modules = nullptr);

  /// Extend the deadline of every shard still leased under `token`. Returns
  /// how many were renewed (0 = the lease is gone; the worker should
  /// re-lease).
  std::size_t renew(std::uint64_t token, std::int64_t now_ms,
                    std::int64_t ttl_ms);

  enum class SubmitCheck : std::uint8_t {
    kMergeable,  ///< leased under this token; accept and mark done
    kDuplicate,  ///< already done; idempotent no-op
    kStale,      ///< open or leased under a different token; reject
  };
  [[nodiscard]] SubmitCheck check_submit(std::uint64_t index,
                                         std::uint64_t token) const;

  /// Record a merged shard: entry -> kDone, worker's `completed` grows.
  void mark_done(std::uint64_t index, const std::string& worker);

  [[nodiscard]] std::uint64_t count(LeaseState state) const;
  [[nodiscard]] bool complete() const {
    return count(LeaseState::kDone) == entries.size();
  }
};

[[nodiscard]] common::JsonWriter campaign_ledger_json(
    const CampaignLeaseLedger& ledger);
[[nodiscard]] common::Result<CampaignLeaseLedger> parse_campaign_ledger(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<CampaignLeaseLedger> load_campaign_ledger(
    const std::string& path);
/// Atomic write (tmp + rename), like the manifest but without the
/// kill-after-write switch: lease state is control-plane, not results.
[[nodiscard]] bool write_campaign_ledger(const std::string& path,
                                         const CampaignLeaseLedger& ledger);
/// Where the ledger lives for a given manifest: `<manifest>.leases.json`.
[[nodiscard]] std::string campaign_ledger_path(
    const std::string& manifest_path);

// --- Partial-manifest merge --------------------------------------------------

struct ShardMergeOutcome {
  std::size_t accepted = 0;    ///< new records inserted
  std::size_t duplicates = 0;  ///< already present (idempotent)
};

/// Merge a worker's batch into the manifest, keeping `manifest.shards`
/// sorted in canonical grid order and `manifest.wcdp` in module plan order.
/// All-or-nothing validation: a submitted plan hash that differs from the
/// manifest's, or any record that does not map onto the grid, rejects the
/// whole batch (kInvalidArgument) with nothing merged. Records already
/// present count as duplicates and are left untouched -- by determinism the
/// bytes are identical, so first-wins is also last-wins.
[[nodiscard]] common::Result<ShardMergeOutcome> merge_campaign_shards(
    CampaignManifest& manifest, const std::vector<ShardCoord>& grid,
    std::uint64_t submitted_plan_hash, const std::vector<ManifestWcdp>& wcdp,
    const std::vector<ManifestShard>& shards);

}  // namespace vppstudy::core
