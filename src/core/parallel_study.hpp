// The parallel deterministic sweep engine.
//
// A characterization campaign (Figs. 3-11) is an embarrassingly parallel grid
// of (module, VPP level) cells: every cell owns its own rig session, so cells
// never share device state. This layer decomposes a StudyConfig into those
// per-cell jobs, runs them on a work-stealing pool (common/thread_pool), and
// reassembles the per-module sweep results in a fixed order.
//
// Determinism: each job derives a private noise stream from
//   hash_key({seed, module seed, VPP in millivolts, phase tag})
// and re-keys its session with it, so a job's output is a pure function of
// its key -- never of scheduling. `jobs = 1` and `jobs = N` produce
// bit-identical results (and byte-identical CSV exports).
#pragma once

#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "core/study.hpp"
#include "dram/profile.hpp"

namespace vppstudy::core {

/// A full multi-module campaign: what to sweep, on which modules, with which
/// base seed for the per-job noise streams, and how many workers.
struct StudyConfig {
  SweepConfig sweep;
  std::vector<dram::ModuleProfile> modules;
  /// Base seed of the per-job noise streams. Campaigns with different seeds
  /// see independent measurement noise; the device physics (which cells are
  /// weak, where flips land) is keyed by each module's own profile seed and
  /// does not change.
  std::uint64_t seed = 0;
  /// Worker threads: 1 runs jobs inline on the calling thread (serial),
  /// >= 2 spawns that many workers, 0 or negative uses all hardware threads.
  int jobs = 1;
};

/// The experiment family a job belongs to; part of its stream key so the
/// same (module, VPP) cell draws independent noise in different sweeps.
enum class JobPhase : std::uint64_t {
  kWcdp = 1,
  kRowHammer = 2,
  kTrcd = 3,
  kRetention = 4,
};

/// VPP level quantized to the millivolt grid of the rig's supply (stable
/// against floating-point drift in level arithmetic).
[[nodiscard]] std::uint64_t vpp_millivolts(double vpp_v) noexcept;

/// The deterministic per-job stream seed (see file header).
[[nodiscard]] std::uint64_t job_stream_seed(std::uint64_t seed,
                                            std::uint64_t module_seed,
                                            std::uint64_t vpp_mv,
                                            JobPhase phase) noexcept;

class ParallelStudy {
 public:
  explicit ParallelStudy(StudyConfig config);

  [[nodiscard]] const StudyConfig& config() const noexcept { return config_; }

  /// Alg. 1 over the whole grid; one ModuleSweepResult per module, in
  /// config order. Fails on the first failing job (module order, then level
  /// order -- deterministic regardless of scheduling).
  [[nodiscard]] common::Expected<std::vector<ModuleSweepResult>>
  rowhammer_sweeps();

  /// Alg. 2 over the grid (Fig. 7).
  [[nodiscard]] common::Expected<std::vector<TrcdSweepResult>> trcd_sweeps();

  /// Alg. 3 over the grid (Fig. 10).
  [[nodiscard]] common::Expected<std::vector<RetentionSweepResult>>
  retention_sweeps();

 private:
  StudyConfig config_;
};

}  // namespace vppstudy::core
