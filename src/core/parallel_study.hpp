// The parallel deterministic sweep engine.
//
// A characterization campaign (Figs. 3-11) is an embarrassingly parallel grid
// of (module, VPP level) cells, and each cell is itself a loop over sampled
// rows whose results never interact (per-row physics snapshots, see
// dram/module.hpp). This layer decomposes a StudyConfig into row-range
// *shards* of those cells -- `rows_per_shard` rows per job -- runs them on a
// work-stealing pool (common/thread_pool), and reassembles the per-module
// sweep results in a fixed order. Sharding below the cell is what lets a
// small campaign (few modules, few levels) keep every core busy.
//
// Rig sessions are not rebuilt per shard: each worker keeps one Session per
// module in a WorkerLocal arena and re-checks it out with
// Session::reset_for_job(), which restores fresh-rig state while retaining
// the device's per-row physics caches (the expensive part).
//
// Determinism: every sampled row derives a private noise stream from
//   hash_key({seed, module seed, VPP in millivolts, phase tag, row})
// and the shard re-keys its session before testing that row, so a row's
// output is a pure function of its key -- never of scheduling, shard
// granularity, or session reuse. `jobs = 1` and `jobs = N` produce
// bit-identical results (and byte-identical CSV exports), and so do any two
// `rows_per_shard` values. Campaigns planned below a small job-count
// threshold skip the pool entirely and run inline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "common/expected.hpp"
#include "core/axis.hpp"
#include "core/study.hpp"
#include "dram/profile.hpp"

namespace vppstudy::softmc {
class Session;
}  // namespace vppstudy::softmc

namespace vppstudy::core {

/// A full multi-module campaign: what to sweep, on which modules, with which
/// base seed for the per-row noise streams, and how many workers.
struct StudyConfig {
  SweepConfig sweep;
  std::vector<dram::ModuleProfile> modules;
  /// Base seed of the per-row noise streams. Campaigns with different seeds
  /// see independent measurement noise; the device physics (which cells are
  /// weak, where flips land) is keyed by each module's own profile seed and
  /// does not change.
  std::uint64_t seed = 0;
  /// Worker threads: 1 runs jobs inline on the calling thread (serial),
  /// >= 2 spawns that many workers, 0 or negative uses all hardware threads.
  /// The engine additionally drops to inline execution when the planned job
  /// count is too small for a pool to pay off, and never spawns more workers
  /// than there are jobs.
  int jobs = 1;
  /// Shard granularity: sampled rows per shard job within one (module, VPP
  /// level) cell. Smaller shards expose more parallelism when the grid has
  /// fewer cells than cores; 0 means one shard per cell (the pre-sharding
  /// behavior). Pure performance knob: per-row noise streams make results
  /// bit-identical at any value.
  std::uint32_t rows_per_shard = 4;
  /// Cooperative cancellation: shard jobs poll this between sampled rows and
  /// fail with kCancelled, so a cancelled campaign drains in at most one
  /// row's worth of work per in-flight shard. Rows finished before the
  /// cancel are complete and valid (never torn) -- the vppd result cache
  /// relies on that. Default token never cancels.
  common::CancelToken cancel;
};

// JobPhase and the multi-axis AxisPoint vocabulary live in core/axis.hpp.

/// VPP level quantized to the millivolt grid of the rig's supply (stable
/// against floating-point drift in level arithmetic).
[[nodiscard]] std::uint64_t vpp_millivolts(double vpp_v) noexcept;

/// Stream seed of a whole-cell job: the WCDP prep pass (which walks all rows
/// in one session) and core/resilient_study key their noise with this.
[[nodiscard]] std::uint64_t job_stream_seed(std::uint64_t seed,
                                            std::uint64_t module_seed,
                                            std::uint64_t vpp_mv,
                                            JobPhase phase) noexcept;

/// Stream seed of one sampled row within a cell (see file header). Keying
/// per row -- not per shard -- is what makes `rows_per_shard` a pure
/// performance knob.
[[nodiscard]] std::uint64_t row_stream_seed(std::uint64_t seed,
                                            std::uint64_t module_seed,
                                            std::uint64_t vpp_mv,
                                            JobPhase phase,
                                            std::uint32_t row) noexcept;

// --- Shard-level building blocks ---------------------------------------------
// The engine below and the vppd characterization service both compose
// campaigns from these: one function call computes one row-range slice of a
// (module, VPP level) grid cell on a caller-provided session, with every
// random quantity keyed per row (row_stream_seed). Because results are pure
// functions of the row keys, a caller may regroup rows into any slices --
// the vppd cache computes exactly the uncovered rows of a request and the
// output is bit-identical to a full in-process sweep.

/// Concrete row addresses a campaign samples on `profile`: a pure function
/// of (profile, sampling) that needs no device, so servers and cache-key
/// derivation can call it cheaply.
[[nodiscard]] std::vector<std::uint32_t> sample_campaign_rows(
    const dram::ModuleProfile& profile, const harness::RowSampling& sampling);

/// Output of the per-module WCDP determination pass (phase A of the
/// RowHammer campaign, section 4.1): the worst-case data pattern of each
/// sampled row at nominal VPP, parallel to the input rows.
struct WcdpPrep {
  std::vector<dram::DataPattern> wcdp;
  softmc::CommandCounts counts;  ///< the prep session's instrumentation
};

[[nodiscard]] common::Expected<WcdpPrep> run_wcdp_prep(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double nominal_vpp, std::span<const std::uint32_t> rows);

/// One row-range slice of a (module, VPP level) RowHammer cell. `wcdp` is
/// parallel to `rows`. Polls `cancel` before each row.
struct HammerCell {
  std::vector<harness::RowHammerRowResult> rows;
  softmc::CommandCounts counts;
};

[[nodiscard]] common::Expected<HammerCell> run_hammer_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel = {});

/// Multi-axis form: one row-range slice at an arbitrary grid point
/// (VPP x temperature x hammer count x on-time). `point` must be normalized
/// (AxisPoint::normalized); a baseline point reproduces the VPP-only form
/// byte for byte -- same session setup, same per-row stream keys.
[[nodiscard]] common::Expected<HammerCell> run_hammer_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel = {});

/// Non-uniform pattern form of the hammer shard: each sampled row is the
/// victim of one harness::AttackKind::kFuzzed attack running `spec`, scored
/// by post-TRR flips. Result shape reuses RowHammerRowResult so manifests,
/// caches, and grids carry pattern cells unchanged: hc_first holds the
/// post-TRR flip count across the pattern's victim set (the fuzzer's
/// fitness), ber the corresponding bit error rate. `point.pattern_hash` must
/// equal spec.spec_hash(). Because the pattern path issues REF (TRR acts),
/// the session is fully reset per row -- results stay pure functions of the
/// row keys and shard regrouping stays byte-identical.
[[nodiscard]] common::Expected<HammerCell> run_pattern_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, const harness::PatternSpec& spec,
    std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel = {});

/// One row-range slice of a (module, VPP level) tRCD cell (Alg. 2).
struct TrcdCell {
  std::vector<harness::TrcdRowResult> rows;
  softmc::CommandCounts counts;
};

[[nodiscard]] common::Expected<TrcdCell> run_trcd_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel = {});

/// Multi-axis form (VPP x temperature; tRCD ignores the hammer axes).
[[nodiscard]] common::Expected<TrcdCell> run_trcd_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel = {});

/// One row-range slice of a (module, VPP level) retention cell (Alg. 3).
struct RetentionCell {
  std::vector<harness::RetentionRowResult> rows;
  softmc::CommandCounts counts;
};

[[nodiscard]] common::Expected<RetentionCell> run_retention_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel = {});

/// Multi-axis form (VPP x temperature; retention ignores the hammer axes).
[[nodiscard]] common::Expected<RetentionCell> run_retention_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel = {});

/// Thin adapter over core::CampaignEngine (core/campaign.hpp): a VPP-only
/// campaign plan executed by the unified engine. Kept as the stable sweep
/// API; results are byte-identical to the pre-engine implementation (the
/// equivalence suites pin this).
class ParallelStudy {
 public:
  explicit ParallelStudy(StudyConfig config);

  [[nodiscard]] const StudyConfig& config() const noexcept { return config_; }

  /// Alg. 1 over the whole grid; one ModuleSweepResult per module, in
  /// config order. Fails on the first failing job (module order, then level
  /// order, then shard order -- deterministic regardless of scheduling).
  [[nodiscard]] common::Expected<std::vector<ModuleSweepResult>>
  rowhammer_sweeps();

  /// Alg. 2 over the grid (Fig. 7).
  [[nodiscard]] common::Expected<std::vector<TrcdSweepResult>> trcd_sweeps();

  /// Alg. 3 over the grid (Fig. 10).
  [[nodiscard]] common::Expected<std::vector<RetentionSweepResult>>
  retention_sweeps();

 private:
  StudyConfig config_;
};

}  // namespace vppstudy::core
