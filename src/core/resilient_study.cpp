#include "core/resilient_study.hpp"

#include <utility>

#include "common/units.hpp"
#include "core/parallel_study.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"
#include "stats/descriptive.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

namespace {

/// One full per-module RowHammer sweep (WCDP prep + every usable level),
/// run serially in sessions that carry the attempt's fault injector and a
/// trace ring. On failure, `failure_dump` holds the failing session's ring
/// with the error recorded -- captured before the session is torn down.
common::Expected<ModuleSweepResult> attempt_module_sweep(
    const dram::ModuleProfile& profile, const ResilientConfig& config,
    softmc::FaultInjector* injector, SweepInstrumentation& instr,
    softmc::TraceDump& failure_dump, bool& has_failure_dump) {
  const std::vector<double> levels =
      usable_vpp_levels(config.sweep, profile.vppmin_v);
  if (levels.empty()) {
    return Error{ErrorCode::kNoUsableLevels,
                 "no usable VPP levels for module " + profile.name}
        .with_module(profile.name);
  }
  const double nominal = levels.front();

  const auto rig_session = [&](softmc::Session& session, double vpp_v,
                               JobPhase phase) -> common::Status {
    session.enable_trace(config.trace_capacity);
    if (injector != nullptr) session.set_fault_injector(injector);
    session.set_auto_refresh(false);
    VPP_RETURN_IF_ERROR(
        session.set_temperature(common::kHammerTestTempC));
    VPP_RETURN_IF_ERROR(session.set_vpp(vpp_v));
    session.set_noise_stream(job_stream_seed(
        config.seed, profile.seed, vpp_millivolts(vpp_v), phase));
    return common::Status::ok_status();
  };
  const auto fail = [&](softmc::Session& session,
                        common::Error error) -> common::Error {
    failure_dump = softmc::capture_trace_dump(session, &error);
    has_failure_dump = true;
    instr.add_job(session.counters());
    return error;
  };

  ModuleSweepResult result;
  result.module_name = profile.name;
  result.mfr = profile.mfr;
  result.vppmin_v = profile.vppmin_v;
  result.vpp_levels = levels;

  // Phase A: row sampling + per-row WCDP at the nominal level.
  std::vector<std::uint32_t> rows;
  std::vector<dram::DataPattern> wcdp;
  {
    softmc::Session session(profile);
    if (auto st = rig_session(session, nominal, JobPhase::kWcdp); !st.ok()) {
      return fail(session,
                  std::move(st).error().with_module(profile.name).with_context(
                      "wcdp session setup"));
    }
    rows = config.sweep.sampling.sample(session.module().mapping());
    if (rows.empty()) {
      return fail(session,
                  Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
                      .with_module(profile.name));
    }
    if (config.sweep.determine_wcdp) {
      auto found = harness::find_wcdp_hammer_rows(
          session, config.sweep.sampling.bank, rows);
      if (!found) {
        return fail(session, std::move(found)
                                 .error()
                                 .with_module(profile.name)
                                 .with_context("wcdp determination"));
      }
      wcdp = std::move(*found);
    } else {
      wcdp.assign(rows.size(), dram::DataPattern::kCheckerAA);
    }
    instr.add_job(session.counters());
  }
  result.rows.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    result.rows[i].row = rows[i];
    result.rows[i].wcdp = wcdp[i];
  }

  // Phase B: one session per VPP level, highest first.
  for (const double vpp : levels) {
    softmc::Session session(profile);
    if (auto st = rig_session(session, vpp, JobPhase::kRowHammer); !st.ok()) {
      return fail(session,
                  std::move(st)
                      .error()
                      .with_module(profile.name)
                      .with_vpp_mv(static_cast<std::int64_t>(
                          vpp_millivolts(vpp)))
                      .with_context("hammer session setup"));
    }
    harness::RowHammerTest test(session, config.sweep.hammer);
    auto level = test.test_rows(config.sweep.sampling.bank, rows, wcdp);
    if (!level) {
      return fail(session, std::move(level)
                               .error()
                               .with_module(profile.name)
                               .with_vpp_mv(static_cast<std::int64_t>(
                                   vpp_millivolts(vpp))));
    }
    instr.add_job(session.counters());
    for (std::size_t i = 0; i < level->size(); ++i) {
      result.rows[i].hc_first.push_back((*level)[i].hc_first);
      result.rows[i].ber.push_back((*level)[i].ber);
    }
    result.instrumentation.add_job(session.counters());
  }
  return result;
}

}  // namespace

std::size_t CampaignResult::completed_count() const noexcept {
  std::size_t n = 0;
  for (const ModuleCampaignResult& m : modules) {
    if (m.completed) ++n;
  }
  return n;
}

double CampaignResult::hc_first_cv() const {
  std::vector<double> values;
  values.reserve(modules.size());
  for (const ModuleCampaignResult& m : modules) {
    if (!m.completed) continue;  // quarantined: partial data, excluded
    const std::uint64_t hc = m.sweep.min_hc_first_at(0);
    if (hc > 0) values.push_back(static_cast<double>(hc));
  }
  if (values.size() < 2) return 0.0;
  return stats::coefficient_of_variation(values);
}

CampaignResult run_resilient_rowhammer(const ResilientConfig& config) {
  CampaignResult campaign;
  campaign.modules.reserve(config.modules.size());

  for (const dram::ModuleProfile& profile : config.modules) {
    ModuleCampaignResult outcome;
    outcome.module_name = profile.name;

    softmc::FaultInjector injector(config.faults);
    softmc::FaultInjector* active =
        config.faults.empty() ? nullptr : &injector;

    const std::uint32_t budget =
        config.retry.max_attempts > 0 ? config.retry.max_attempts : 1;
    for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
      // Re-salting the draws means a retry faces *different* fault sites
      // than the attempt that failed -- deterministic progress instead of
      // deterministic re-failure.
      injector.set_attempt(attempt);
      outcome.attempts = attempt + 1;
      if (attempt > 0) ++campaign.instrumentation.retries;

      auto sweep = attempt_module_sweep(profile, config, active,
                                        campaign.instrumentation, outcome.dump,
                                        outcome.has_dump);
      outcome.injections = injector.counts();
      if (sweep) {
        outcome.completed = true;
        outcome.error_code = ErrorCode::kUnknown;
        outcome.error_message.clear();
        outcome.has_dump = false;
        outcome.sweep = std::move(*sweep);
        break;
      }
      outcome.error_code = sweep.error().code;
      outcome.error_message = sweep.error().to_string();
      if (!config.retry.should_retry(sweep.error().code, attempt + 1)) break;
    }

    if (!outcome.completed) {
      ++campaign.instrumentation.quarantined_modules;
      harness::QuarantineRecord record;
      record.module = profile.name;
      record.code = outcome.error_code;
      record.message = outcome.error_message;
      record.attempts = outcome.attempts;
      campaign.quarantines.push_back(std::move(record));
    }
    campaign.modules.push_back(std::move(outcome));
  }
  return campaign;
}

}  // namespace vppstudy::core
