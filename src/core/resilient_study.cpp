#include "core/resilient_study.hpp"

#include <utility>

#include "core/campaign.hpp"
#include "stats/descriptive.hpp"

namespace vppstudy::core {

std::size_t CampaignResult::completed_count() const noexcept {
  std::size_t n = 0;
  for (const ModuleCampaignResult& m : modules) {
    if (m.completed) ++n;
  }
  return n;
}

double CampaignResult::hc_first_cv() const {
  std::vector<double> values;
  values.reserve(modules.size());
  for (const ModuleCampaignResult& m : modules) {
    if (!m.completed) continue;  // quarantined: partial data, excluded
    const std::uint64_t hc = m.sweep.min_hc_first_at(0);
    if (hc > 0) values.push_back(static_cast<double>(hc));
  }
  if (values.size() < 2) return 0.0;
  return stats::coefficient_of_variation(values);
}

CampaignResult run_resilient_rowhammer(const ResilientConfig& config) {
  // Thin adapter: the retry/quarantine loop itself lives in
  // core::CampaignEngine (campaign_engine.cpp) next to the grid drivers.
  CampaignPlan plan;
  plan.sweep = config.sweep;
  plan.modules = config.modules;
  plan.seed = config.seed;
  CampaignEngine engine(std::move(plan));
  return engine.run_resilient(config.faults, config.retry,
                              config.trace_capacity);
}

}  // namespace vppstudy::core
