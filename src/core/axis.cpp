#include "core/axis.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace vppstudy::core {

// Defined in parallel_study.cpp (the legacy seed functions live with the
// shard primitives); declared here to avoid the include cycle.
std::uint64_t vpp_millivolts(double vpp_v) noexcept;
std::uint64_t row_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase,
                              std::uint32_t row) noexcept;

double default_phase_temperature(JobPhase phase) noexcept {
  return phase == JobPhase::kRetention ? common::kRetentionTestTempC
                                       : common::kHammerTestTempC;
}

std::int64_t temperature_millidegrees(double temp_c) noexcept {
  return static_cast<std::int64_t>(std::llround(temp_c * 1000.0));
}

std::int64_t act_to_act_picoseconds(double ns) noexcept {
  return static_cast<std::int64_t>(std::llround(ns * 1000.0));
}

AxisPoint AxisPoint::normalized(JobPhase phase,
                                std::uint64_t default_hammer_count) const {
  AxisPoint p;
  p.vpp_v = vpp_v;
  if (temperature_c > 0.0 &&
      temperature_millidegrees(temperature_c) !=
          temperature_millidegrees(default_phase_temperature(phase))) {
    p.temperature_c = temperature_c;
  }
  if (phase == JobPhase::kRowHammer) {
    if (hammer_count != 0 && hammer_count != default_hammer_count) {
      p.hammer_count = hammer_count;
    }
    if (act_to_act_ns > 0.0) p.act_to_act_ns = act_to_act_ns;
    p.pattern_hash = pattern_hash;
  }
  return p;
}

double AxisPoint::resolved_temperature(JobPhase phase) const noexcept {
  return temperature_c > 0.0 ? temperature_c
                             : default_phase_temperature(phase);
}

const harness::PatternSpec* CampaignAxes::find_pattern(
    std::uint64_t pattern_hash) const noexcept {
  if (pattern_hash == 0) return nullptr;
  for (const harness::PatternSpec& spec : patterns) {
    if (spec.spec_hash() == pattern_hash) return &spec;
  }
  return nullptr;
}

std::vector<AxisPoint> CampaignAxes::points_for(
    const std::vector<double>& vpp_levels, JobPhase phase,
    std::uint64_t default_hammer_count) const {
  const std::vector<double> temps =
      temperatures_c.empty() ? std::vector<double>{0.0} : temperatures_c;
  const bool hammer_phase = phase == JobPhase::kRowHammer;
  const std::vector<std::uint64_t> hcs =
      (hammer_phase && !hammer_counts.empty()) ? hammer_counts
                                               : std::vector<std::uint64_t>{0};
  const std::vector<double> acts =
      (hammer_phase && !act_to_act_ns.empty()) ? act_to_act_ns
                                               : std::vector<double>{0.0};
  std::vector<std::uint64_t> pats{0};
  if (hammer_phase && !patterns.empty()) {
    pats.clear();
    for (const harness::PatternSpec& spec : patterns) {
      pats.push_back(spec.spec_hash());
    }
  }
  std::vector<AxisPoint> points;
  points.reserve(vpp_levels.size() * temps.size() * hcs.size() * acts.size() *
                 pats.size());
  for (const double vpp : vpp_levels) {
    for (const double temp : temps) {
      for (const std::uint64_t hc : hcs) {
        for (const double act : acts) {
          for (const std::uint64_t pat : pats) {
            AxisPoint raw;
            raw.vpp_v = vpp;
            raw.temperature_c = temp;
            raw.hammer_count = hc;
            raw.act_to_act_ns = act;
            raw.pattern_hash = pat;
            const AxisPoint p = raw.normalized(phase, default_hammer_count);
            if (std::find(points.begin(), points.end(), p) == points.end()) {
              points.push_back(p);
            }
          }
        }
      }
    }
  }
  return points;
}

std::uint64_t point_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                                JobPhase phase, std::uint32_t row,
                                const AxisPoint& point) noexcept {
  const std::uint64_t vpp_mv = vpp_millivolts(point.vpp_v);
  if (point.baseline()) {
    return row_stream_seed(seed, module_seed, vpp_mv, phase, row);
  }
  std::uint64_t h = common::hash_key(
      {seed, module_seed, vpp_mv, static_cast<std::uint64_t>(phase), row,
       static_cast<std::uint64_t>(temperature_millidegrees(point.temperature_c)),
       point.hammer_count,
       static_cast<std::uint64_t>(act_to_act_picoseconds(point.act_to_act_ns))});
  // hash_key is a left fold, so appending the pattern word only when present
  // leaves every pre-pattern off-default stream byte-identical.
  if (point.pattern_hash != 0) {
    h = common::hash_accumulate(h, point.pattern_hash);
  }
  return h;
}

}  // namespace vppstudy::core
