// Public facade: run the paper's characterization campaigns against a module
// and aggregate the observations of sections 5 and 6.
//
// Quickstart:
//   auto profile = chips::profile_by_name("B3").value();
//   core::Study study(profile);
//   core::SweepConfig cfg = core::SweepConfig::quick();
//   auto sweep = study.rowhammer_sweep(cfg);
//   auto obs = core::aggregate_observations({*sweep});
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "harness/experiment.hpp"
#include "harness/retention_test.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/trcd_test.hpp"
#include "softmc/counters.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

/// VPP levels and row sampling for one characterization campaign.
struct SweepConfig {
  /// Voltages to test, highest first. Levels below the module's VPPmin are
  /// skipped automatically (the module stops responding there, section 7).
  std::vector<double> vpp_levels;
  harness::RowSampling sampling;
  harness::RowHammerConfig hammer;
  harness::TrcdConfig trcd;
  harness::RetentionConfig retention;
  bool determine_wcdp = true;  ///< per-row WCDP at nominal VPP (section 4.1)

  /// The paper's full grid: 2.5V down to 1.4V in 0.1V steps.
  [[nodiscard]] static SweepConfig paper();
  /// A reduced grid + small row sample that runs in seconds (for tests,
  /// examples, and bench defaults; benches report the sample size).
  [[nodiscard]] static SweepConfig quick();
};

/// The subset of `config.vpp_levels` a module can actually run: levels below
/// the module's VPPmin are dropped (the module stops responding, section 7).
[[nodiscard]] std::vector<double> usable_vpp_levels(const SweepConfig& config,
                                                    double vppmin_v);

/// Aggregated rig instrumentation for one sweep: the per-session command
/// counts of every job that contributed, summed. Integer sums are
/// order-independent, so the aggregate is identical at any --jobs count even
/// though jobs complete in scheduler order.
struct SweepInstrumentation {
  std::uint64_t jobs = 0;  ///< rig sessions that contributed
  /// Retry accounting (core/resilient_study): sessions re-run after a
  /// transient failure, and modules given up on after the retry budget.
  /// Plain sweeps leave both at zero.
  std::uint64_t retries = 0;
  std::uint64_t quarantined_modules = 0;
  softmc::CommandCounts counts;

  void add_job(const softmc::CommandCounts& job_counts) {
    ++jobs;
    counts += job_counts;
  }
  SweepInstrumentation& operator+=(const SweepInstrumentation& other) {
    jobs += other.jobs;
    retries += other.retries;
    quarantined_modules += other.quarantined_modules;
    counts += other.counts;
    return *this;
  }
  friend bool operator==(const SweepInstrumentation&,
                         const SweepInstrumentation&) = default;
  /// "12 jobs: ACT=... hammerACT=... RD=... ..." (see CommandCounts).
  [[nodiscard]] std::string summary() const;
};

/// One row's metric across the tested VPP levels.
struct RowSeries {
  std::uint32_t row = 0;
  dram::DataPattern wcdp = dram::DataPattern::kCheckerAA;
  std::vector<std::uint64_t> hc_first;  ///< parallel to vpp_levels
  std::vector<double> ber;
};

struct ModuleSweepResult {
  std::string module_name;
  dram::Manufacturer mfr = dram::Manufacturer::kMfrA;
  double vppmin_v = 0.0;
  std::vector<double> vpp_levels;  ///< actually tested (>= VPPmin)
  std::vector<RowSeries> rows;
  /// Summed command counts of every rig session this sweep ran (WCDP prep
  /// plus one job per VPP level).
  SweepInstrumentation instrumentation;

  /// Index of a VPP level, or -1.
  [[nodiscard]] int level_index(double vpp_v) const noexcept;
  /// Module-level metric at a level: min HCfirst / max BER across rows (the
  /// paper's Table 3 semantics).
  [[nodiscard]] std::uint64_t min_hc_first_at(std::size_t level) const;
  [[nodiscard]] double max_ber_at(std::size_t level) const;
  /// Per-row normalized values (vs the nominal level 0).
  [[nodiscard]] std::vector<double> normalized_hc_first_at(
      std::size_t level) const;
  [[nodiscard]] std::vector<double> normalized_ber_at(std::size_t level) const;
};

/// tRCD sweep output (Fig. 7).
struct TrcdSweepResult {
  std::string module_name;
  double vppmin_v = 0.0;
  std::vector<double> vpp_levels;
  /// Module tRCDmin (max across sampled rows) per level.
  std::vector<double> trcd_min_ns;
  SweepInstrumentation instrumentation;
};

/// Retention sweep output (Fig. 10).
struct RetentionSweepResult {
  std::string module_name;
  dram::Manufacturer mfr = dram::Manufacturer::kMfrA;
  std::vector<double> vpp_levels;
  std::vector<double> trefw_ms;
  /// mean_ber[level][window] across sampled rows.
  std::vector<std::vector<double>> mean_ber;
  /// Per-row BER at a reference window (Fig. 10b), parallel to vpp_levels.
  std::vector<std::vector<double>> row_ber_at_reference;
  double reference_trefw_ms = 4000.0;
  SweepInstrumentation instrumentation;
};

class Study {
 public:
  explicit Study(const dram::ModuleProfile& profile);

  [[nodiscard]] softmc::Session& session() noexcept { return session_; }
  [[nodiscard]] const dram::ModuleProfile& profile() const noexcept {
    return session_.module().profile();
  }

  [[nodiscard]] common::Expected<ModuleSweepResult> rowhammer_sweep(
      const SweepConfig& config);
  [[nodiscard]] common::Expected<TrcdSweepResult> trcd_sweep(
      const SweepConfig& config);
  [[nodiscard]] common::Expected<RetentionSweepResult> retention_sweep(
      const SweepConfig& config);

 private:
  softmc::Session session_;
};

/// The headline aggregates of sections 5 and 8 (Takeaway 1).
struct Observations {
  double mean_hc_first_increase = 0.0;  ///< fractional, at VPPmin (paper: 0.074)
  double max_hc_first_increase = 0.0;   ///< paper: 0.858
  double mean_ber_reduction = 0.0;      ///< paper: 0.152
  double max_ber_reduction = 0.0;       ///< paper: 0.669
  double fraction_rows_hc_increase = 0.0;   ///< paper: 0.693
  double fraction_rows_hc_decrease = 0.0;   ///< paper: 0.142
  double fraction_rows_ber_decrease = 0.0;  ///< paper: 0.812
  double fraction_rows_ber_increase = 0.0;  ///< paper: 0.154
};

[[nodiscard]] Observations aggregate_observations(
    std::span<const ModuleSweepResult> sweeps);

}  // namespace vppstudy::core
