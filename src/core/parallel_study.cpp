#include "core/parallel_study.hpp"

#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "harness/retention_test.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/trcd_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

std::uint64_t vpp_millivolts(double vpp_v) noexcept {
  return static_cast<std::uint64_t>(std::llround(vpp_v * 1000.0));
}

std::uint64_t job_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase) noexcept {
  return common::hash_key(
      {seed, module_seed, vpp_mv, static_cast<std::uint64_t>(phase)});
}

namespace {

unsigned workers_for(int jobs) {
  return common::ThreadPool::workers_for_jobs(jobs);
}

/// Configure a fresh rig session the way every characterization job starts:
/// refresh disabled (which also neutralizes TRR, section 4.1), temperature
/// set, VPP programmed, and the job's private noise stream keyed in.
common::Status setup_job_session(softmc::Session& session, double temp_c,
                                 double vpp_v, std::uint64_t base_seed,
                                 JobPhase phase) {
  session.set_auto_refresh(false);
  if (auto st = session.set_temperature(temp_c); !st.ok()) return st;
  if (auto st = session.set_vpp(vpp_v); !st.ok()) return st;
  session.set_noise_stream(job_stream_seed(
      base_seed, session.module().profile().seed, vpp_millivolts(vpp_v),
      phase));
  return common::Status::ok_status();
}

/// Output of a per-module WCDP job (phase A of the RowHammer campaign).
struct HammerPrep {
  std::vector<std::uint32_t> rows;
  std::vector<dram::DataPattern> wcdp;
  softmc::CommandCounts counts;  ///< the prep session's instrumentation
};

common::Expected<HammerPrep> wcdp_job(const dram::ModuleProfile& profile,
                                      const SweepConfig& sweep,
                                      std::uint64_t base_seed,
                                      double nominal_vpp) {
  softmc::Session session(profile);
  if (auto st = setup_job_session(session, common::kHammerTestTempC,
                                  nominal_vpp, base_seed, JobPhase::kWcdp);
      !st.ok()) {
    return std::move(st).error().with_module(profile.name).with_context(
        "wcdp job setup");
  }
  HammerPrep prep;
  prep.rows = sweep.sampling.sample(session.module().mapping());
  if (prep.rows.empty()) {
    return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
        .with_module(profile.name);
  }
  if (sweep.determine_wcdp) {
    auto wcdp =
        harness::find_wcdp_hammer_rows(session, sweep.sampling.bank,
                                       prep.rows);
    if (!wcdp) {
      return std::move(wcdp).error().with_module(profile.name).with_context(
          "wcdp determination");
    }
    prep.wcdp = std::move(*wcdp);
  } else {
    prep.wcdp.assign(prep.rows.size(), dram::DataPattern::kCheckerAA);
  }
  prep.counts = session.counters();
  return prep;
}

/// Phase B of the RowHammer campaign: one (module, VPP level) cell.
struct HammerLevel {
  std::vector<harness::RowHammerRowResult> rows;
  softmc::CommandCounts counts;
};

common::Expected<HammerLevel> hammer_level_job(
    const dram::ModuleProfile& profile, const SweepConfig& sweep,
    std::uint64_t base_seed, double vpp_v, const HammerPrep& prep) {
  softmc::Session session(profile);
  if (auto st = setup_job_session(session, common::kHammerTestTempC, vpp_v,
                                  base_seed, JobPhase::kRowHammer);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)))
        .with_context("hammer job setup");
  }
  harness::RowHammerTest test(session, sweep.hammer);
  auto rows = test.test_rows(sweep.sampling.bank, prep.rows, prep.wcdp);
  if (!rows) {
    return std::move(rows)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)));
  }
  return HammerLevel{std::move(*rows), session.counters()};
}

/// One (module, VPP level) cell of the tRCD campaign: module tRCDmin is the
/// max across sampled rows (Table 3 semantics).
struct TrcdLevel {
  double trcd_min_ns = 0.0;
  softmc::CommandCounts counts;
};

common::Expected<TrcdLevel> trcd_level_job(const dram::ModuleProfile& profile,
                                           const SweepConfig& sweep,
                                           std::uint64_t base_seed,
                                           double vpp_v) {
  softmc::Session session(profile);
  if (auto st = setup_job_session(session, common::kHammerTestTempC, vpp_v,
                                  base_seed, JobPhase::kTrcd);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)))
        .with_context("trcd job setup");
  }
  const auto rows = sweep.sampling.sample(session.module().mapping());
  if (rows.empty()) {
    return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
        .with_module(profile.name);
  }
  harness::TrcdTest test(session, sweep.trcd);
  auto results =
      test.test_rows(sweep.sampling.bank, rows, dram::DataPattern::kCheckerAA);
  if (!results) {
    return std::move(results)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)));
  }
  TrcdLevel out;
  for (const auto& r : *results) {
    out.trcd_min_ns = std::max(out.trcd_min_ns, r.trcd_min_ns);
  }
  out.counts = session.counters();
  return out;
}

/// One (module, VPP level) cell of the retention campaign.
struct RetentionLevel {
  std::vector<double> trefw_ms;
  std::vector<double> mean_ber;        ///< per window, averaged across rows
  std::vector<double> ref_bers;        ///< per row, at the reference window
  softmc::CommandCounts counts;
};

common::Expected<RetentionLevel> retention_level_job(
    const dram::ModuleProfile& profile, const SweepConfig& sweep,
    std::uint64_t base_seed, double vpp_v, double reference_trefw_ms) {
  // Retention tests run at 80C (section 4.1).
  softmc::Session session(profile);
  if (auto st = setup_job_session(session, common::kRetentionTestTempC, vpp_v,
                                  base_seed, JobPhase::kRetention);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)))
        .with_context("retention job setup");
  }
  const auto rows = sweep.sampling.sample(session.module().mapping());
  if (rows.empty()) {
    return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
        .with_module(profile.name);
  }
  harness::RetentionTest test(session, sweep.retention);
  auto results =
      test.test_rows(sweep.sampling.bank, rows, dram::DataPattern::kCheckerAA);
  if (!results) {
    return std::move(results)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_millivolts(vpp_v)));
  }

  RetentionLevel out;
  std::vector<double> sums;
  for (const auto& rr : *results) {
    if (out.trefw_ms.empty()) out.trefw_ms = rr.trefw_ms;
    if (sums.empty()) sums.assign(rr.ber.size(), 0.0);
    for (std::size_t w = 0; w < rr.ber.size(); ++w) sums[w] += rr.ber[w];
    // Per-row BER at the reference window (closest probed window).
    std::size_t ref = 0;
    for (std::size_t w = 0; w < rr.trefw_ms.size(); ++w) {
      if (std::abs(rr.trefw_ms[w] - reference_trefw_ms) <
          std::abs(rr.trefw_ms[ref] - reference_trefw_ms)) {
        ref = w;
      }
    }
    out.ref_bers.push_back(rr.ber[ref]);
  }
  for (double& s : sums) s /= static_cast<double>(results->size());
  out.mean_ber = std::move(sums);
  out.counts = session.counters();
  return out;
}

}  // namespace

ParallelStudy::ParallelStudy(StudyConfig config) : config_(std::move(config)) {}

common::Expected<std::vector<ModuleSweepResult>>
ParallelStudy::rowhammer_sweeps() {
  common::ThreadPool pool(workers_for(config_.jobs));
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;

  struct ModulePlan {
    std::vector<double> levels;
    std::future<common::Expected<HammerPrep>> prep;
    std::shared_ptr<const HammerPrep> ready;
    std::vector<std::future<common::Expected<HammerLevel>>> per_level;
  };
  std::vector<ModulePlan> plans(config_.modules.size());

  // Phase A: one WCDP-determination job per module, all in flight at once.
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].levels = usable_vpp_levels(sweep, profile.vppmin_v);
    if (plans[m].levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    const double nominal = plans[m].levels.front();
    plans[m].prep = pool.submit([&profile, &sweep, seed, nominal] {
      return wcdp_job(profile, sweep, seed, nominal);
    });
  }

  // Phase B: as each module's prep lands, fan out its (module, level) cells.
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    auto prep = plans[m].prep.get();
    if (!prep) return std::move(prep).error();
    plans[m].ready = std::make_shared<const HammerPrep>(std::move(*prep));
    for (const double vpp : plans[m].levels) {
      plans[m].per_level.push_back(
          pool.submit([&profile, &sweep, seed, vpp, prep = plans[m].ready] {
            return hammer_level_job(profile, sweep, seed, vpp, *prep);
          }));
    }
  }

  // Assembly in (module, level) order: independent of completion order.
  std::vector<ModuleSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    ModuleSweepResult result;
    result.module_name = profile.name;
    result.mfr = profile.mfr;
    result.vppmin_v = profile.vppmin_v;
    result.vpp_levels = plans[m].levels;
    result.rows.resize(plans[m].ready->rows.size());
    result.instrumentation.add_job(plans[m].ready->counts);
    for (std::size_t i = 0; i < plans[m].ready->rows.size(); ++i) {
      result.rows[i].row = plans[m].ready->rows[i];
      result.rows[i].wcdp = plans[m].ready->wcdp[i];
    }
    for (auto& future : plans[m].per_level) {
      auto level = future.get();
      if (!level) return std::move(level).error();
      result.instrumentation.add_job(level->counts);
      for (std::size_t i = 0; i < level->rows.size(); ++i) {
        result.rows[i].hc_first.push_back(level->rows[i].hc_first);
        result.rows[i].ber.push_back(level->rows[i].ber);
      }
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

common::Expected<std::vector<TrcdSweepResult>> ParallelStudy::trcd_sweeps() {
  common::ThreadPool pool(workers_for(config_.jobs));
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;

  std::vector<std::vector<std::future<common::Expected<TrcdLevel>>>> cells(
      config_.modules.size());
  std::vector<std::vector<double>> levels(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    levels[m] = usable_vpp_levels(sweep, profile.vppmin_v);
    if (levels[m].empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    for (const double vpp : levels[m]) {
      cells[m].push_back(pool.submit([&profile, &sweep, seed, vpp] {
        return trcd_level_job(profile, sweep, seed, vpp);
      }));
    }
  }

  std::vector<TrcdSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    TrcdSweepResult result;
    result.module_name = config_.modules[m].name;
    result.vppmin_v = config_.modules[m].vppmin_v;
    result.vpp_levels = levels[m];
    for (auto& future : cells[m]) {
      auto trcd = future.get();
      if (!trcd) return std::move(trcd).error();
      result.instrumentation.add_job(trcd->counts);
      result.trcd_min_ns.push_back(trcd->trcd_min_ns);
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

common::Expected<std::vector<RetentionSweepResult>>
ParallelStudy::retention_sweeps() {
  common::ThreadPool pool(workers_for(config_.jobs));
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;

  std::vector<std::vector<std::future<common::Expected<RetentionLevel>>>>
      cells(config_.modules.size());
  std::vector<std::vector<double>> levels(config_.modules.size());
  const double reference_trefw_ms = RetentionSweepResult{}.reference_trefw_ms;
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    levels[m] = usable_vpp_levels(sweep, profile.vppmin_v);
    if (levels[m].empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    for (const double vpp : levels[m]) {
      cells[m].push_back(
          pool.submit([&profile, &sweep, seed, vpp, reference_trefw_ms] {
            return retention_level_job(profile, sweep, seed, vpp,
                                       reference_trefw_ms);
          }));
    }
  }

  std::vector<RetentionSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    RetentionSweepResult result;
    result.module_name = config_.modules[m].name;
    result.mfr = config_.modules[m].mfr;
    result.vpp_levels = levels[m];
    for (auto& future : cells[m]) {
      auto level = future.get();
      if (!level) return std::move(level).error();
      result.instrumentation.add_job(level->counts);
      if (result.trefw_ms.empty()) result.trefw_ms = level->trefw_ms;
      result.mean_ber.push_back(std::move(level->mean_ber));
      result.row_ber_at_reference.push_back(std::move(level->ref_bers));
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

}  // namespace vppstudy::core
