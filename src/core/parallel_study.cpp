#include "core/parallel_study.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "dram/mapping.hpp"
#include "harness/retention_test.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/trcd_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

std::uint64_t vpp_millivolts(double vpp_v) noexcept {
  return static_cast<std::uint64_t>(std::llround(vpp_v * 1000.0));
}

std::uint64_t job_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase) noexcept {
  return common::hash_key(
      {seed, module_seed, vpp_mv, static_cast<std::uint64_t>(phase)});
}

std::uint64_t row_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase,
                              std::uint32_t row) noexcept {
  return common::hash_key({seed, module_seed, vpp_mv,
                           static_cast<std::uint64_t>(phase), row});
}

namespace {

/// Below this many planned jobs the pool is pure overhead (thread spin-up,
/// futures, arenas migrating between cores): run everything inline instead.
constexpr std::size_t kMinJobsForPool = 8;

unsigned workers_for(int jobs, std::size_t planned_jobs) {
  if (planned_jobs < kMinJobsForPool) return 0;
  const unsigned workers = common::ThreadPool::workers_for_jobs(jobs);
  return static_cast<unsigned>(std::min<std::size_t>(workers, planned_jobs));
}

/// One reusable rig session per (worker, module). At shard granularity the
/// per-job Session construction the engine used to do (allocations, observer
/// wiring, and above all throwing away the device's per-row physics caches)
/// dominates; a worker instead checks out the session it already built for
/// the module and Session::reset_for_job() restores fresh-rig state
/// bit-identically while keeping those caches warm.
struct SessionArena {
  std::vector<std::unique_ptr<softmc::Session>> sessions;  ///< by module index

  softmc::Session& acquire(std::size_t module_index,
                           const dram::ModuleProfile& profile) {
    if (sessions.size() <= module_index) sessions.resize(module_index + 1);
    auto& slot = sessions[module_index];
    if (slot) {
      slot->reset_for_job();
    } else {
      slot = std::make_unique<softmc::Session>(profile);
    }
    return *slot;
  }
};

/// Declared before the pool in every sweep method: the pool's destructor
/// drains still-queued jobs, and those jobs touch their worker's arena.
using Arenas = common::WorkerLocal<SessionArena>;

/// A [begin, end) index range into the sampled row list.
struct ShardSpec {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<ShardSpec> shard_ranges(std::size_t rows,
                                    std::uint32_t rows_per_shard) {
  const std::size_t step = rows_per_shard == 0 ? rows : rows_per_shard;
  std::vector<ShardSpec> out;
  for (std::size_t b = 0; b < rows; b += step) {
    out.push_back({b, std::min(rows, b + step)});
  }
  return out;
}

/// Bring a checked-out session to the state every characterization shard
/// starts from: refresh disabled (which also neutralizes TRR, section 4.1),
/// temperature settled, VPP programmed. Noise streams are keyed per row by
/// the shard loop itself.
common::Status setup_shard_session(softmc::Session& session, double temp_c,
                                   double vpp_v) {
  session.set_auto_refresh(false);
  if (auto st = session.set_temperature(temp_c); !st.ok()) return st;
  return session.set_vpp(vpp_v);
}

/// Per-module WCDP prep plus the shared row sample it is parallel to
/// (phase A of the RowHammer campaign). Never sharded: the WCDP pass is one
/// sweep over all rows at nominal VPP, so it keeps the whole-cell
/// job_stream_seed keying.
struct HammerPrep {
  std::shared_ptr<const std::vector<std::uint32_t>> rows;
  WcdpPrep prep;
};

}  // namespace

std::vector<std::uint32_t> sample_campaign_rows(
    const dram::ModuleProfile& profile, const harness::RowSampling& sampling) {
  // RowSampling only consults the logical->physical mapping, which is a pure
  // function of the profile (dram::Module builds its own mapping from the
  // same three fields) -- no device needed.
  const dram::RowMapping mapping(dram::scheme_for(profile.mfr),
                                 profile.rows_per_bank, profile.row_repairs);
  return sampling.sample(mapping);
}

common::Expected<WcdpPrep> run_wcdp_prep(softmc::Session& session,
                                         const SweepConfig& sweep,
                                         std::uint64_t seed,
                                         double nominal_vpp,
                                         std::span<const std::uint32_t> rows) {
  const dram::ModuleProfile& profile = session.module().profile();
  if (auto st = setup_shard_session(session, common::kHammerTestTempC,
                                    nominal_vpp);
      !st.ok()) {
    return std::move(st).error().with_module(profile.name).with_context(
        "wcdp job setup");
  }
  session.set_noise_stream(job_stream_seed(seed, profile.seed,
                                           vpp_millivolts(nominal_vpp),
                                           JobPhase::kWcdp));
  WcdpPrep prep;
  if (sweep.determine_wcdp) {
    auto wcdp = harness::find_wcdp_hammer_rows(
        session, sweep.sampling.bank,
        std::vector<std::uint32_t>(rows.begin(), rows.end()));
    if (!wcdp) {
      return std::move(wcdp).error().with_module(profile.name).with_context(
          "wcdp determination");
    }
    prep.wcdp = std::move(*wcdp);
  } else {
    prep.wcdp.assign(rows.size(), dram::DataPattern::kCheckerAA);
  }
  prep.counts = session.counters();
  return prep;
}

common::Expected<HammerCell> run_hammer_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel) {
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(vpp_v);
  if (auto st =
          setup_shard_session(session, common::kHammerTestTempC, vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("hammer shard setup");
  }
  harness::RowHammerTest test(session, sweep.hammer);
  HammerCell out;
  out.rows.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "hammer shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(row_stream_seed(seed, profile.seed, vpp_mv,
                                             JobPhase::kRowHammer, rows[i]));
    auto r = test.test_row(sweep.sampling.bank, rows[i], wcdp[i]);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

common::Expected<TrcdCell> run_trcd_rows(softmc::Session& session,
                                         const SweepConfig& sweep,
                                         std::uint64_t seed, double vpp_v,
                                         std::span<const std::uint32_t> rows,
                                         const common::CancelToken& cancel) {
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(vpp_v);
  if (auto st =
          setup_shard_session(session, common::kHammerTestTempC, vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("trcd shard setup");
  }
  harness::TrcdTest test(session, sweep.trcd);
  TrcdCell out;
  out.rows.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "trcd shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(row_stream_seed(seed, profile.seed, vpp_mv,
                                             JobPhase::kTrcd, row));
    auto r = test.test_row(sweep.sampling.bank, row,
                           dram::DataPattern::kCheckerAA);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

common::Expected<RetentionCell> run_retention_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel) {
  // Retention tests run at 80C (section 4.1).
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(vpp_v);
  if (auto st =
          setup_shard_session(session, common::kRetentionTestTempC, vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("retention shard setup");
  }
  harness::RetentionTest test(session, sweep.retention);
  RetentionCell out;
  out.rows.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "retention shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(row_stream_seed(seed, profile.seed, vpp_mv,
                                             JobPhase::kRetention, row));
    auto r = test.test_row(sweep.sampling.bank, row,
                           dram::DataPattern::kCheckerAA);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

ParallelStudy::ParallelStudy(StudyConfig config) : config_(std::move(config)) {}

common::Expected<std::vector<ModuleSweepResult>>
ParallelStudy::rowhammer_sweeps() {
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;

  struct ModulePlan {
    std::vector<double> levels;
    std::shared_ptr<const std::vector<std::uint32_t>> rows;
    std::vector<ShardSpec> shards;
    std::future<common::Expected<HammerPrep>> prep;
    std::shared_ptr<const HammerPrep> ready;
    /// per_level[level][shard], in submission (= assembly) order.
    std::vector<std::vector<std::future<common::Expected<HammerCell>>>>
        per_level;
  };

  // Plan before spawning anything: levels, row samples, and shard ranges
  // need no device, and the worker count adapts to the true job count
  // (tiny campaigns run inline).
  std::vector<ModulePlan> plans(config_.modules.size());
  std::size_t planned_jobs = 0;
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].levels = usable_vpp_levels(sweep, profile.vppmin_v);
    if (plans[m].levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    auto rows = sample_campaign_rows(profile, sweep.sampling);
    if (rows.empty()) {
      return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
          .with_module(profile.name);
    }
    plans[m].shards = shard_ranges(rows.size(), config_.rows_per_shard);
    plans[m].rows = std::make_shared<const std::vector<std::uint32_t>>(
        std::move(rows));
    planned_jobs += 1 + plans[m].levels.size() * plans[m].shards.size();
  }

  Arenas arenas(workers_for(config_.jobs, planned_jobs));
  common::ThreadPool pool(static_cast<unsigned>(arenas.size() - 1));

  // Phase A: one WCDP-determination job per module, all in flight at once.
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    const double nominal = plans[m].levels.front();
    plans[m].prep = pool.submit(
        [&arenas, &pool, &profile, &sweep, seed, nominal, m,
         rows = plans[m].rows]() -> common::Expected<HammerPrep> {
          auto prep = run_wcdp_prep(arenas.local(pool).acquire(m, profile),
                                    sweep, seed, nominal, *rows);
          if (!prep) return std::move(prep).error();
          return HammerPrep{rows, std::move(*prep)};
        });
  }

  // Phase B: as each module's prep lands, fan out its level x shard cells.
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    auto prep = plans[m].prep.get();
    if (!prep) return std::move(prep).error();
    plans[m].ready = std::make_shared<const HammerPrep>(std::move(*prep));
    plans[m].per_level.resize(plans[m].levels.size());
    for (std::size_t l = 0; l < plans[m].levels.size(); ++l) {
      const double vpp = plans[m].levels[l];
      for (const ShardSpec shard : plans[m].shards) {
        plans[m].per_level[l].push_back(pool.submit(
            [&arenas, &pool, &profile, &sweep, seed, vpp, m, shard,
             cancel = config_.cancel, prep = plans[m].ready] {
              return run_hammer_rows(
                  arenas.local(pool).acquire(m, profile), sweep, seed, vpp,
                  std::span(*prep->rows).subspan(shard.begin,
                                                 shard.end - shard.begin),
                  std::span(prep->prep.wcdp)
                      .subspan(shard.begin, shard.end - shard.begin),
                  cancel);
            }));
      }
    }
  }

  // Assembly in (module, level, shard) order: independent of completion
  // order, and shard boundaries vanish from the per-row series.
  std::vector<ModuleSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    const std::vector<std::uint32_t>& rows = *plans[m].rows;
    ModuleSweepResult result;
    result.module_name = profile.name;
    result.mfr = profile.mfr;
    result.vppmin_v = profile.vppmin_v;
    result.vpp_levels = plans[m].levels;
    result.rows.resize(rows.size());
    result.instrumentation.add_job(plans[m].ready->prep.counts);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      result.rows[i].row = rows[i];
      result.rows[i].wcdp = plans[m].ready->prep.wcdp[i];
    }
    for (auto& level : plans[m].per_level) {
      for (std::size_t s = 0; s < level.size(); ++s) {
        auto part = level[s].get();
        if (!part) return std::move(part).error();
        result.instrumentation.add_job(part->counts);
        const ShardSpec spec = plans[m].shards[s];
        for (std::size_t i = spec.begin; i < spec.end; ++i) {
          const auto& rr = part->rows[i - spec.begin];
          result.rows[i].hc_first.push_back(rr.hc_first);
          result.rows[i].ber.push_back(rr.ber);
        }
      }
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

common::Expected<std::vector<TrcdSweepResult>> ParallelStudy::trcd_sweeps() {
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;

  struct ModulePlan {
    std::vector<double> levels;
    std::shared_ptr<const std::vector<std::uint32_t>> rows;
    std::vector<ShardSpec> shards;
    std::vector<std::vector<std::future<common::Expected<TrcdCell>>>> cells;
  };
  std::vector<ModulePlan> plans(config_.modules.size());
  std::size_t planned_jobs = 0;
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].levels = usable_vpp_levels(sweep, profile.vppmin_v);
    if (plans[m].levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    auto rows = sample_campaign_rows(profile, sweep.sampling);
    if (rows.empty()) {
      return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
          .with_module(profile.name);
    }
    plans[m].shards = shard_ranges(rows.size(), config_.rows_per_shard);
    plans[m].rows = std::make_shared<const std::vector<std::uint32_t>>(
        std::move(rows));
    planned_jobs += plans[m].levels.size() * plans[m].shards.size();
  }

  Arenas arenas(workers_for(config_.jobs, planned_jobs));
  common::ThreadPool pool(static_cast<unsigned>(arenas.size() - 1));

  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].cells.resize(plans[m].levels.size());
    for (std::size_t l = 0; l < plans[m].levels.size(); ++l) {
      const double vpp = plans[m].levels[l];
      for (const ShardSpec shard : plans[m].shards) {
        plans[m].cells[l].push_back(pool.submit(
            [&arenas, &pool, &profile, &sweep, seed, vpp, m, shard,
             cancel = config_.cancel, rows = plans[m].rows] {
              return run_trcd_rows(
                  arenas.local(pool).acquire(m, profile), sweep, seed, vpp,
                  std::span(*rows).subspan(shard.begin,
                                           shard.end - shard.begin),
                  cancel);
            }));
      }
    }
  }

  std::vector<TrcdSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    TrcdSweepResult result;
    result.module_name = config_.modules[m].name;
    result.vppmin_v = config_.modules[m].vppmin_v;
    result.vpp_levels = plans[m].levels;
    for (auto& level : plans[m].cells) {
      // Module tRCDmin is the max across sampled rows (Table 3 semantics);
      // with shards the reduction happens here, in fixed order.
      double trcd_min_ns = 0.0;
      for (auto& future : level) {
        auto part = future.get();
        if (!part) return std::move(part).error();
        result.instrumentation.add_job(part->counts);
        for (const auto& rr : part->rows) {
          trcd_min_ns = std::max(trcd_min_ns, rr.trcd_min_ns);
        }
      }
      result.trcd_min_ns.push_back(trcd_min_ns);
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

common::Expected<std::vector<RetentionSweepResult>>
ParallelStudy::retention_sweeps() {
  const SweepConfig& sweep = config_.sweep;
  const std::uint64_t seed = config_.seed;
  const double reference_trefw_ms = RetentionSweepResult{}.reference_trefw_ms;

  struct ModulePlan {
    std::vector<double> levels;
    std::shared_ptr<const std::vector<std::uint32_t>> rows;
    std::vector<ShardSpec> shards;
    std::vector<std::vector<std::future<common::Expected<RetentionCell>>>>
        cells;
  };
  std::vector<ModulePlan> plans(config_.modules.size());
  std::size_t planned_jobs = 0;
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].levels = usable_vpp_levels(sweep, profile.vppmin_v);
    if (plans[m].levels.empty()) {
      return Error{ErrorCode::kNoUsableLevels,
                   "no usable VPP levels for module " + profile.name}
          .with_module(profile.name);
    }
    auto rows = sample_campaign_rows(profile, sweep.sampling);
    if (rows.empty()) {
      return Error{ErrorCode::kEmptySample, "row sampling produced no rows"}
          .with_module(profile.name);
    }
    plans[m].shards = shard_ranges(rows.size(), config_.rows_per_shard);
    plans[m].rows = std::make_shared<const std::vector<std::uint32_t>>(
        std::move(rows));
    planned_jobs += plans[m].levels.size() * plans[m].shards.size();
  }

  Arenas arenas(workers_for(config_.jobs, planned_jobs));
  common::ThreadPool pool(static_cast<unsigned>(arenas.size() - 1));

  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    const dram::ModuleProfile& profile = config_.modules[m];
    plans[m].cells.resize(plans[m].levels.size());
    for (std::size_t l = 0; l < plans[m].levels.size(); ++l) {
      const double vpp = plans[m].levels[l];
      for (const ShardSpec shard : plans[m].shards) {
        plans[m].cells[l].push_back(pool.submit(
            [&arenas, &pool, &profile, &sweep, seed, vpp, m, shard,
             cancel = config_.cancel, rows = plans[m].rows] {
              return run_retention_rows(
                  arenas.local(pool).acquire(m, profile), sweep, seed, vpp,
                  std::span(*rows).subspan(shard.begin,
                                           shard.end - shard.begin),
                  cancel);
            }));
      }
    }
  }

  std::vector<RetentionSweepResult> sweeps;
  sweeps.reserve(config_.modules.size());
  for (std::size_t m = 0; m < config_.modules.size(); ++m) {
    RetentionSweepResult result;
    result.module_name = config_.modules[m].name;
    result.mfr = config_.modules[m].mfr;
    result.vpp_levels = plans[m].levels;
    const double row_count = static_cast<double>(plans[m].rows->size());
    for (auto& level : plans[m].cells) {
      // Across-rows reductions (window means, reference-window BERs) happen
      // here, in fixed row order, so shard boundaries cannot show.
      std::vector<double> sums;
      std::vector<double> ref_bers;
      for (auto& future : level) {
        auto part = future.get();
        if (!part) return std::move(part).error();
        result.instrumentation.add_job(part->counts);
        for (const auto& rr : part->rows) {
          if (result.trefw_ms.empty()) result.trefw_ms = rr.trefw_ms;
          if (sums.empty()) sums.assign(rr.ber.size(), 0.0);
          for (std::size_t w = 0; w < rr.ber.size(); ++w) sums[w] += rr.ber[w];
          // Per-row BER at the reference window (closest probed window).
          std::size_t ref = 0;
          for (std::size_t w = 0; w < rr.trefw_ms.size(); ++w) {
            if (std::abs(rr.trefw_ms[w] - reference_trefw_ms) <
                std::abs(rr.trefw_ms[ref] - reference_trefw_ms)) {
              ref = w;
            }
          }
          ref_bers.push_back(rr.ber[ref]);
        }
      }
      for (double& s : sums) s /= row_count;
      result.mean_ber.push_back(std::move(sums));
      result.row_ber_at_reference.push_back(std::move(ref_bers));
    }
    sweeps.push_back(std::move(result));
  }
  return sweeps;
}

}  // namespace vppstudy::core
