#include "core/parallel_study.hpp"

#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/campaign.hpp"
#include "dram/mapping.hpp"
#include "harness/attack_patterns.hpp"
#include "harness/retention_test.hpp"
#include "harness/rowhammer_test.hpp"
#include "harness/trcd_test.hpp"
#include "harness/wcdp.hpp"
#include "softmc/session.hpp"

namespace vppstudy::core {

using common::Error;
using common::ErrorCode;

std::uint64_t vpp_millivolts(double vpp_v) noexcept {
  return static_cast<std::uint64_t>(std::llround(vpp_v * 1000.0));
}

std::uint64_t job_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase) noexcept {
  return common::hash_key(
      {seed, module_seed, vpp_mv, static_cast<std::uint64_t>(phase)});
}

std::uint64_t row_stream_seed(std::uint64_t seed, std::uint64_t module_seed,
                              std::uint64_t vpp_mv, JobPhase phase,
                              std::uint32_t row) noexcept {
  return common::hash_key({seed, module_seed, vpp_mv,
                           static_cast<std::uint64_t>(phase), row});
}

namespace {

/// Bring a checked-out session to the state every characterization shard
/// starts from: refresh disabled (which also neutralizes TRR, section 4.1),
/// temperature settled, VPP programmed. Noise streams are keyed per row by
/// the shard loop itself.
common::Status setup_shard_session(softmc::Session& session, double temp_c,
                                   double vpp_v) {
  session.set_auto_refresh(false);
  if (auto st = session.set_temperature(temp_c); !st.ok()) return st;
  return session.set_vpp(vpp_v);
}

/// The hammer config at one grid point: a baseline point uses the sweep's
/// config untouched (byte-compat with the VPP-only driver); a hammer-count
/// axis overrides the fixed BER hammer count, an on-time axis overrides the
/// aggressor ACT-to-ACT spacing.
harness::RowHammerConfig hammer_config_at(const SweepConfig& sweep,
                                          const AxisPoint& point) {
  harness::RowHammerConfig config = sweep.hammer;
  if (point.hammer_count != 0) config.ber_hc = point.hammer_count;
  if (point.act_to_act_ns > 0.0) config.act_to_act_ns = point.act_to_act_ns;
  return config;
}

}  // namespace

std::vector<std::uint32_t> sample_campaign_rows(
    const dram::ModuleProfile& profile, const harness::RowSampling& sampling) {
  // RowSampling only consults the logical->physical mapping, which is a pure
  // function of the profile (dram::Module builds its own mapping from the
  // same three fields) -- no device needed.
  const dram::RowMapping mapping(dram::scheme_for(profile.mfr),
                                 profile.rows_per_bank, profile.row_repairs);
  return sampling.sample(mapping);
}

common::Expected<WcdpPrep> run_wcdp_prep(softmc::Session& session,
                                         const SweepConfig& sweep,
                                         std::uint64_t seed,
                                         double nominal_vpp,
                                         std::span<const std::uint32_t> rows) {
  const dram::ModuleProfile& profile = session.module().profile();
  if (auto st = setup_shard_session(session, common::kHammerTestTempC,
                                    nominal_vpp);
      !st.ok()) {
    return std::move(st).error().with_module(profile.name).with_context(
        "wcdp job setup");
  }
  session.set_noise_stream(job_stream_seed(seed, profile.seed,
                                           vpp_millivolts(nominal_vpp),
                                           JobPhase::kWcdp));
  WcdpPrep prep;
  if (sweep.determine_wcdp) {
    auto wcdp = harness::find_wcdp_hammer_rows(
        session, sweep.sampling.bank,
        std::vector<std::uint32_t>(rows.begin(), rows.end()));
    if (!wcdp) {
      return std::move(wcdp).error().with_module(profile.name).with_context(
          "wcdp determination");
    }
    prep.wcdp = std::move(*wcdp);
  } else {
    prep.wcdp.assign(rows.size(), dram::DataPattern::kCheckerAA);
  }
  prep.counts = session.counters();
  return prep;
}

common::Expected<HammerCell> run_hammer_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel) {
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(point.vpp_v);
  if (auto st = setup_shard_session(
          session, point.resolved_temperature(JobPhase::kRowHammer),
          point.vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("hammer shard setup");
  }
  harness::RowHammerTest test(session, hammer_config_at(sweep, point));
  HammerCell out;
  out.rows.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "hammer shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(point_stream_seed(
        seed, profile.seed, JobPhase::kRowHammer, rows[i], point));
    auto r = test.test_row(sweep.sampling.bank, rows[i], wcdp[i]);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

common::Expected<HammerCell> run_hammer_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel) {
  return run_hammer_rows(session, sweep, seed, AxisPoint{vpp_v}, rows, wcdp,
                         cancel);
}

common::Expected<HammerCell> run_pattern_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, const harness::PatternSpec& spec,
    std::span<const std::uint32_t> rows,
    std::span<const dram::DataPattern> wcdp,
    const common::CancelToken& cancel) {
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(point.vpp_v);
  const harness::RowHammerConfig config = hammer_config_at(sweep, point);
  HammerCell out;
  out.rows.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "pattern shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    // Unlike the refresh-free uniform path, a pattern attack issues REF, so
    // TRR tracker state would leak from one victim's attack into the next.
    // A full per-row reset keeps each result a pure function of its row key
    // (reset_for_job is asserted bit-equal to a fresh session), which is
    // what lets callers regroup rows into any shard slices.
    session.reset_for_job();
    if (auto st = setup_shard_session(
            session, point.resolved_temperature(JobPhase::kRowHammer),
            point.vpp_v);
        !st.ok()) {
      return std::move(st)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
          .with_context("pattern shard setup");
    }
    // A spec whose widest offset falls off the bank at this victim cannot
    // attack it: record a zero-flip row instead of failing the campaign, so
    // every pattern is scored over the same row sample (edge rows simply
    // contribute nothing for patterns too wide to reach them).
    const auto& mapping = session.module().mapping();
    const std::int64_t victim_phys =
        static_cast<std::int64_t>(mapping.logical_to_physical(rows[i]));
    bool fits = true;
    for (const harness::AggressorSpec& a : spec.aggressors) {
      const std::int64_t phys = victim_phys + a.offset;
      if (phys < 0 || phys >= static_cast<std::int64_t>(mapping.rows())) {
        fits = false;
        break;
      }
    }
    if (!fits) {
      out.rows.push_back({rows[i], wcdp[i], 0, 0.0});
      out.counts += session.counters();
      continue;
    }
    session.set_noise_stream(point_stream_seed(
        seed, profile.seed, JobPhase::kRowHammer, rows[i], point));
    harness::AttackConfig attack;
    attack.kind = harness::AttackKind::kFuzzed;
    attack.pattern = &spec;
    attack.hammer_count = config.ber_hc;
    attack.victim_pattern = wcdp[i];
    auto r = harness::run_attack(session, sweep.sampling.bank, rows[i], attack);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    harness::RowHammerRowResult rr;
    rr.row = rows[i];
    rr.wcdp = wcdp[i];
    rr.hc_first = r->total_flips;
    rr.ber = r->victim_rows == 0
                 ? 0.0
                 : static_cast<double>(r->total_flips) /
                       (static_cast<double>(r->victim_rows) *
                        static_cast<double>(dram::kBitsPerRow));
    out.rows.push_back(rr);
    out.counts += session.counters();
  }
  return out;
}

common::Expected<TrcdCell> run_trcd_rows(softmc::Session& session,
                                         const SweepConfig& sweep,
                                         std::uint64_t seed,
                                         const AxisPoint& point,
                                         std::span<const std::uint32_t> rows,
                                         const common::CancelToken& cancel) {
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(point.vpp_v);
  if (auto st = setup_shard_session(
          session, point.resolved_temperature(JobPhase::kTrcd), point.vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("trcd shard setup");
  }
  harness::TrcdTest test(session, sweep.trcd);
  TrcdCell out;
  out.rows.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "trcd shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(
        point_stream_seed(seed, profile.seed, JobPhase::kTrcd, row, point));
    auto r = test.test_row(sweep.sampling.bank, row,
                           dram::DataPattern::kCheckerAA);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

common::Expected<TrcdCell> run_trcd_rows(softmc::Session& session,
                                         const SweepConfig& sweep,
                                         std::uint64_t seed, double vpp_v,
                                         std::span<const std::uint32_t> rows,
                                         const common::CancelToken& cancel) {
  return run_trcd_rows(session, sweep, seed, AxisPoint{vpp_v}, rows, cancel);
}

common::Expected<RetentionCell> run_retention_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    const AxisPoint& point, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel) {
  // Retention tests default to 80C (section 4.1).
  const dram::ModuleProfile& profile = session.module().profile();
  const std::uint64_t vpp_mv = vpp_millivolts(point.vpp_v);
  if (auto st = setup_shard_session(
          session, point.resolved_temperature(JobPhase::kRetention),
          point.vpp_v);
      !st.ok()) {
    return std::move(st)
        .error()
        .with_module(profile.name)
        .with_vpp_mv(static_cast<std::int64_t>(vpp_mv))
        .with_context("retention shard setup");
  }
  harness::RetentionTest test(session, sweep.retention);
  RetentionCell out;
  out.rows.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    if (cancel.cancelled()) {
      return Error{ErrorCode::kCancelled, "retention shard cancelled"}
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    session.set_noise_stream(point_stream_seed(
        seed, profile.seed, JobPhase::kRetention, row, point));
    auto r = test.test_row(sweep.sampling.bank, row,
                           dram::DataPattern::kCheckerAA);
    if (!r) {
      return std::move(r)
          .error()
          .with_module(profile.name)
          .with_vpp_mv(static_cast<std::int64_t>(vpp_mv));
    }
    out.rows.push_back(std::move(*r));
  }
  out.counts = session.counters();
  return out;
}

common::Expected<RetentionCell> run_retention_rows(
    softmc::Session& session, const SweepConfig& sweep, std::uint64_t seed,
    double vpp_v, std::span<const std::uint32_t> rows,
    const common::CancelToken& cancel) {
  return run_retention_rows(session, sweep, seed, AxisPoint{vpp_v}, rows,
                            cancel);
}

ParallelStudy::ParallelStudy(StudyConfig config) : config_(std::move(config)) {}

common::Expected<std::vector<ModuleSweepResult>>
ParallelStudy::rowhammer_sweeps() {
  CampaignEngine engine(CampaignPlan::from_study(config_));
  VPP_ASSIGN_OR_RETURN(const std::vector<HammerGrid> grids,
                       engine.run_hammer());
  std::vector<ModuleSweepResult> sweeps;
  sweeps.reserve(grids.size());
  for (const HammerGrid& grid : grids) sweeps.push_back(grid.to_sweep());
  return sweeps;
}

common::Expected<std::vector<TrcdSweepResult>> ParallelStudy::trcd_sweeps() {
  CampaignEngine engine(CampaignPlan::from_study(config_));
  VPP_ASSIGN_OR_RETURN(const std::vector<TrcdGrid> grids, engine.run_trcd());
  std::vector<TrcdSweepResult> sweeps;
  sweeps.reserve(grids.size());
  for (const TrcdGrid& grid : grids) sweeps.push_back(grid.to_sweep());
  return sweeps;
}

common::Expected<std::vector<RetentionSweepResult>>
ParallelStudy::retention_sweeps() {
  CampaignEngine engine(CampaignPlan::from_study(config_));
  VPP_ASSIGN_OR_RETURN(const std::vector<RetentionGrid> grids,
                       engine.run_retention());
  std::vector<RetentionSweepResult> sweeps;
  sweeps.reserve(grids.size());
  for (const RetentionGrid& grid : grids) sweeps.push_back(grid.to_sweep());
  return sweeps;
}

}  // namespace vppstudy::core
