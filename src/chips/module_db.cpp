#include "chips/module_db.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vppstudy::chips {

using dram::Manufacturer;
using dram::ModuleProfile;
using dram::RetentionWeakClass;

namespace {

std::uint32_t rows_for_density(int density_gbit) {
  switch (density_gbit) {
    case 4: return 32768;
    case 16: return 131072;
    case 8:
    default: return 65536;
  }
}

/// Compact row of Table 3 data.
struct Row {
  const char* name;
  const char* model;
  Manufacturer mfr;
  int chips;
  int density;      // Gbit
  int freq;         // MT/s
  int width;        // x4 / x8
  const char* rev;  // die revision, "-" unknown
  const char* date; // week-year, "-" unknown
  double hc_nom;    // min HCfirst at 2.5V
  double ber_nom;   // BER at 300K, 2.5V
  double vppmin;
  double hc_min;    // min HCfirst at VPPmin
  double ber_min;   // BER at VPPmin
  double vpp_rec;
  double trcd0;     // tRCDmin at 2.5V [ns]
  double trcd_slope;// growth to VPPmin [ns]
};

// Table 3 verbatim (RowHammer columns) plus the tRCD model calibrated to
// Fig. 7: A0-A2 exceed nominal tRCD (fixed by 24ns), B2/B5 exceed it
// slightly (fixed by 15ns), everyone else stays inside the guardband.
constexpr Row kRows[] = {
    {"A0", "MTA18ASF2G72PZ-2G3B1QK", Manufacturer::kMfrA, 16, 8, 2400, 4, "B",
     "11-19", 39.8e3, 1.24e-3, 1.4, 42.2e3, 1.00e-3, 1.4, 12.7, 8.0},
    {"A1", "MTA18ASF2G72PZ-2G3B1QK", Manufacturer::kMfrA, 16, 8, 2400, 4, "B",
     "11-19", 42.2e3, 9.90e-4, 1.4, 46.4e3, 7.83e-4, 1.4, 12.8, 7.0},
    {"A2", "MTA18ASF2G72PZ-2G3B1QK", Manufacturer::kMfrA, 16, 8, 2400, 4, "B",
     "11-19", 41.0e3, 1.24e-3, 1.7, 39.8e3, 1.35e-3, 2.1, 12.6, 9.0},
    {"A3", "CT4G4DFS8266.C8FF", Manufacturer::kMfrA, 8, 4, 2666, 8, "F",
     "07-21", 16.7e3, 3.33e-2, 1.4, 16.5e3, 3.52e-2, 1.7, 11.1, 0.4},
    {"A4", "CT4G4DFS8266.C8FF", Manufacturer::kMfrA, 8, 4, 2666, 8, "F",
     "07-21", 14.4e3, 3.18e-2, 1.5, 14.4e3, 3.33e-2, 2.5, 11.0, 0.4},
    {"A5", "CT4G4SFS8213.C8FBD1", Manufacturer::kMfrA, 8, 4, 2400, 8, "-",
     "48-16", 140.7e3, 1.39e-6, 2.4, 145.4e3, 3.39e-6, 2.4, 10.6, 0.3},
    {"A6", "CT4G4DFS8266.C8FF", Manufacturer::kMfrA, 8, 4, 2666, 8, "F",
     "07-21", 16.5e3, 3.50e-2, 1.5, 16.5e3, 3.66e-2, 2.5, 11.1, 0.45},
    {"A7", "CMV4GX4M1A2133C15", Manufacturer::kMfrA, 8, 4, 2133, 8, "-",
     "-", 16.5e3, 3.42e-2, 1.8, 16.5e3, 3.52e-2, 2.5, 11.2, 0.4},
    {"A8", "MTA18ASF2G72PZ-2G3B1QG", Manufacturer::kMfrA, 16, 8, 2400, 4, "B",
     "11-19", 35.2e3, 2.38e-3, 1.4, 39.8e3, 2.07e-3, 1.4, 11.2, 0.9},
    {"A9", "CMV4GX4M1A2133C15", Manufacturer::kMfrA, 8, 4, 2133, 8, "-",
     "-", 14.3e3, 3.33e-2, 1.5, 14.3e3, 3.48e-2, 1.6, 10.9, 0.4},

    {"B0", "M378A1K43DB2-CTD", Manufacturer::kMfrB, 8, 8, 2666, 8, "D",
     "10-21", 7.9e3, 1.18e-1, 2.0, 7.6e3, 1.22e-1, 2.5, 11.0, 0.45},
    {"B1", "M378A1K43DB2-CTD", Manufacturer::kMfrB, 8, 8, 2666, 8, "D",
     "10-21", 7.3e3, 1.26e-1, 2.0, 7.6e3, 1.28e-1, 2.0, 11.0, 0.4},
    {"B2", "F4-2400C17S-8GNT", Manufacturer::kMfrB, 8, 4, 2400, 8, "F",
     "02-21", 11.2e3, 2.52e-2, 1.6, 12.0e3, 2.22e-2, 1.6, 12.9, 1.8},
    {"B3", "M393A1K43BB1-CTD6Y", Manufacturer::kMfrB, 8, 8, 2666, 8, "B",
     "52-20", 16.6e3, 2.73e-3, 1.6, 21.1e3, 1.09e-3, 1.6, 11.1, 0.5},
    {"B4", "M393A1K43BB1-CTD6Y", Manufacturer::kMfrB, 8, 8, 2666, 8, "B",
     "52-20", 21.0e3, 2.95e-3, 1.8, 19.9e3, 2.52e-3, 2.0, 11.2, 0.45},
    {"B5", "M471A5143EB0-CPB", Manufacturer::kMfrB, 8, 4, 2133, 8, "E",
     "08-17", 21.0e3, 7.78e-3, 1.8, 21.0e3, 6.02e-3, 2.0, 12.8, 1.9},
    {"B6", "CMK16GX4M2B3200C16", Manufacturer::kMfrB, 8, 8, 3200, 8, "-",
     "-", 10.3e3, 1.14e-2, 1.7, 10.5e3, 9.82e-3, 1.7, 11.2, 0.9},
    {"B7", "M378A1K43DB2-CTD", Manufacturer::kMfrB, 8, 8, 2666, 8, "D",
     "10-21", 7.3e3, 1.32e-1, 2.0, 7.6e3, 1.33e-1, 2.0, 11.0, 0.35},
    {"B8", "CMK16GX4M2B3200C16", Manufacturer::kMfrB, 8, 8, 3200, 8, "-",
     "-", 11.6e3, 2.88e-2, 1.7, 10.5e3, 2.37e-2, 1.8, 11.2, 0.85},
    {"B9", "M471A5244CB0-CRC", Manufacturer::kMfrB, 8, 8, 2133, 8, "C",
     "19-19", 11.8e3, 2.68e-2, 1.7, 8.8e3, 2.39e-2, 1.8, 11.1, 0.8},

    {"C0", "F4-2400C17S-8GNT", Manufacturer::kMfrC, 8, 4, 2400, 8, "B",
     "02-21", 19.3e3, 7.29e-3, 1.7, 23.4e3, 6.61e-3, 1.7, 11.0, 0.45},
    {"C1", "F4-2400C17S-8GNT", Manufacturer::kMfrC, 8, 4, 2400, 8, "B",
     "02-21", 19.3e3, 6.31e-3, 1.7, 20.6e3, 5.90e-3, 1.7, 11.1, 0.4},
    {"C2", "KSM32RD8/16HDR", Manufacturer::kMfrC, 8, 8, 3200, 8, "D",
     "48-20", 9.6e3, 2.82e-2, 1.5, 9.2e3, 2.34e-2, 2.3, 11.2, 0.5},
    {"C3", "KSM32RD8/16HDR", Manufacturer::kMfrC, 8, 8, 3200, 8, "D",
     "48-20", 9.3e3, 2.57e-2, 1.5, 8.9e3, 2.21e-2, 2.3, 11.1, 0.45},
    {"C4", "HMAA4GU6AJR8N-XN", Manufacturer::kMfrC, 8, 16, 3200, 8, "A",
     "51-20", 11.6e3, 3.22e-2, 1.5, 11.7e3, 2.88e-2, 1.5, 11.2, 0.9},
    {"C5", "HMAA4GU6AJR8N-XN", Manufacturer::kMfrC, 8, 16, 3200, 8, "A",
     "51-20", 9.4e3, 3.28e-2, 1.5, 12.7e3, 2.85e-2, 1.5, 11.2, 0.85},
    {"C6", "CMV4GX4M1A2133C15", Manufacturer::kMfrC, 8, 4, 2133, 8, "C",
     "-", 14.2e3, 3.08e-2, 1.6, 15.5e3, 2.25e-2, 1.6, 10.8, 0.4},
    {"C7", "CMV4GX4M1A2133C15", Manufacturer::kMfrC, 8, 4, 2133, 8, "C",
     "-", 11.7e3, 3.24e-2, 1.6, 13.6e3, 2.60e-2, 1.6, 10.9, 0.35},
    {"C8", "KSM32RD8/16HDR", Manufacturer::kMfrC, 8, 8, 3200, 8, "D",
     "48-20", 11.4e3, 2.69e-2, 1.6, 9.5e3, 2.57e-2, 2.5, 11.1, 0.45},
    {"C9", "F4-2400C17S-8GNT", Manufacturer::kMfrC, 8, 4, 2400, 8, "B",
     "02-21", 12.6e3, 2.18e-2, 1.7, 15.2e3, 1.63e-2, 1.7, 11.0, 0.4},
};

/// Retention medians at 80C / 2.5V calibrated so Fig. 10b's per-vendor mean
/// BER at tREFW = 4s comes out at 0.3% / 0.2% / 1.4% (2.5V) rising to
/// 0.8% / 0.5% / 2.5% (1.5V); see DESIGN.md section 5.
double ret_mu_for(Manufacturer mfr) {
  switch (mfr) {
    case Manufacturer::kMfrA: return 4.12;
    case Manufacturer::kMfrB: return 4.22;
    case Manufacturer::kMfrC: return 3.54;
  }
  return 4.1;
}

bool is_one_of(std::string_view name, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* s) { return name == s; });
}

ModuleProfile make_profile(const Row& r) {
  ModuleProfile p;
  p.name = r.name;
  p.dimm_model = r.model;
  p.mfr = r.mfr;
  p.num_chips = r.chips;
  p.density_gbit = r.density;
  p.org_width = r.width;
  p.die_revision = r.rev;
  p.mfr_date = r.date;
  p.frequency_mts = r.freq;
  p.rows_per_bank = rows_for_density(r.density);
  p.hc_first_nominal = r.hc_nom;
  p.ber_nominal = r.ber_nom;
  p.vppmin_v = r.vppmin;
  p.hc_first_vppmin = r.hc_min;
  p.ber_vppmin = r.ber_min;
  p.vpp_rec_v = r.vpp_rec;
  p.trcd0_ns = r.trcd0;
  p.trcd_vpp_slope_ns = r.trcd_slope;
  p.ret_mu_log_s = ret_mu_for(r.mfr);
  p.seed = common::hash_key({0x56505053ULL /* "VPPS" */,
                             common::mix64(static_cast<std::uint64_t>(
                                 r.name[0]) << 8 |
                                 static_cast<std::uint64_t>(r.name[1]))});

  // Post-manufacturing row repairs: every DIMM ships with a few fused-out
  // rows remapped to spares near the top of the bank (deterministic per
  // module; the adjacency harness has to discover these the hard way).
  for (std::uint32_t i = 0; i < 2; ++i) {
    dram::RowRepair rep;
    rep.logical_row = static_cast<std::uint32_t>(
        common::hash_key({p.seed, i, 0x5e9a17ULL}) %
        (p.rows_per_bank - 64)) + 32;
    rep.spare_physical = p.rows_per_bank - 4 - 2 * i;
    p.row_repairs.push_back(rep);
  }

  // Retention-weak row classes (Obsv. 13/15, Fig. 11). Only B6/B8/B9 and
  // C1/C3/C5/C9 exhibit 64ms failures at VPPmin; every vendor contributes a
  // small 128ms class.
  if (is_one_of(p.name, {"B6", "B8", "B9"})) {
    p.weak_64ms = RetentionWeakClass{0.155, 4, 34.0, 62.0};
    p.weak_64ms_b = RetentionWeakClass{0.0001, 116, 34.0, 62.0};
  } else if (is_one_of(p.name, {"C1", "C3", "C5", "C9"})) {
    p.weak_64ms = RetentionWeakClass{0.002, 1, 34.0, 62.0};
  }
  switch (p.mfr) {
    case Manufacturer::kMfrA:
      p.weak_128ms = RetentionWeakClass{0.001, 1, 70.0, 126.0};
      break;
    case Manufacturer::kMfrB:
      p.weak_128ms = RetentionWeakClass{0.047, 2, 70.0, 126.0};
      break;
    case Manufacturer::kMfrC:
      p.weak_128ms = RetentionWeakClass{0.002, 1, 70.0, 126.0};
      break;
  }
  return p;
}

}  // namespace

const std::vector<ModuleProfile>& all_profiles() {
  static const std::vector<ModuleProfile> kProfiles = [] {
    std::vector<ModuleProfile> v;
    v.reserve(std::size(kRows));
    for (const Row& r : kRows) v.push_back(make_profile(r));
    return v;
  }();
  return kProfiles;
}

std::optional<ModuleProfile> profile_by_name(std::string_view name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

int total_chip_count() {
  int n = 0;
  for (const auto& p : all_profiles()) n += p.num_chips;
  return n;
}

double recommended_vpp(const dram::ModuleProfile& profile) {
  return profile.vpp_rec_v;
}

}  // namespace vppstudy::chips
