// The 30 tested DIMMs of Table 3 (Appendix A), with their catalog data and
// the measured RowHammer anchors at nominal VPP and VPPmin. These profiles
// drive the device model so the harness re-measures the paper's numbers.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "dram/profile.hpp"

namespace vppstudy::chips {

/// All 30 module profiles (A0-A9, B0-B9, C0-C9), in Table 3 order.
[[nodiscard]] const std::vector<dram::ModuleProfile>& all_profiles();

/// Lookup by short name ("B3"); nullopt when unknown.
[[nodiscard]] std::optional<dram::ModuleProfile> profile_by_name(
    std::string_view name);

/// Total number of DRAM chips across all profiles (the paper's 272).
[[nodiscard]] int total_chip_count();

/// Table 3's recommended operating point for a module (VPP_Rec).
[[nodiscard]] double recommended_vpp(const dram::ModuleProfile& profile);

}  // namespace vppstudy::chips
