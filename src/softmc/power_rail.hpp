// External power-rail model: the study removes the interposer's VPP shunt
// resistor and drives the DIMM's VPP pin from a bench supply (TTi PL068-P)
// with 1mV resolution (section 4.1). This class models that supply: voltage
// setpoints quantize to 1mV and clamp to the instrument's output range.
#pragma once

#include <cstdint>

#include "common/expected.hpp"

namespace vppstudy::softmc {

/// Instrument output limits (defaults: TTi PL068-P, 0-6V, 1mV steps).
struct RailLimits {
  double min_v = 0.0;
  double max_v = 6.0;
  double resolution_v = 0.001;
};

class PowerRail {
 public:
  using Limits = RailLimits;

  explicit PowerRail(double initial_v, Limits limits = Limits{});

  /// Program a setpoint; returns the actually applied (quantized, clamped)
  /// voltage or an error if the request is outside the instrument range.
  common::Expected<double> set_voltage(double volts);

  [[nodiscard]] double voltage() const noexcept { return voltage_v_; }

  /// Crude load-current estimate for the lab notebook: wordline pump draw
  /// scales with activation rate; exposed so examples can report power.
  [[nodiscard]] double estimate_current_a(double activates_per_s) const noexcept;

 private:
  Limits limits_;
  double voltage_v_;
};

}  // namespace vppstudy::softmc
