#include "softmc/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace vppstudy::softmc {

PidController::PidController(Gains gains) : gains_(gains) {}

double PidController::step(double setpoint, double measurement, double dt_s) {
  const double error = setpoint - measurement;
  const double derivative = has_prev_ ? (error - prev_error_) / dt_s : 0.0;
  prev_error_ = error;
  has_prev_ = true;

  // Tentative integral with anti-windup: only integrate when the output is
  // not saturated against the error direction.
  const double tentative = integral_ + error * dt_s;
  double out = gains_.kp * error + gains_.ki * tentative + gains_.kd * derivative;
  if (out > gains_.output_max) {
    out = gains_.output_max;
    if (error < 0.0) integral_ = tentative;
  } else if (out < gains_.output_min) {
    out = gains_.output_min;
    if (error > 0.0) integral_ = tentative;
  } else {
    integral_ = tentative;
  }
  return out;
}

void PidController::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  has_prev_ = false;
}

ThermalPlant::ThermalPlant(Params params)
    : params_(params), temp_c_(params.ambient_c) {}

void ThermalPlant::step(double heater_w, double dt_s) {
  const double equilibrium =
      params_.ambient_c + heater_w * params_.thermal_resistance_c_per_w;
  const double a = std::exp(-dt_s / params_.time_constant_s);
  temp_c_ = equilibrium + (temp_c_ - equilibrium) * a;
}

ThermalChamber::ThermalChamber()
    : pid_(PidController::Gains{}), plant_(ThermalPlant::Params{}) {}

ThermalChamber::SettleResult ThermalChamber::settle(double setpoint_c,
                                                    double max_seconds) {
  constexpr double kDt = 0.5;
  constexpr double kPrecision = 0.1;   // FT200 spec
  constexpr double kHoldSeconds = 30.0;

  SettleResult r;
  double held = 0.0;
  for (double t = 0.0; t < max_seconds; t += kDt) {
    const double power = pid_.step(setpoint_c, plant_.temperature_c(), kDt);
    plant_.step(power, kDt);
    if (std::abs(plant_.temperature_c() - setpoint_c) <= kPrecision) {
      held += kDt;
      if (held >= kHoldSeconds) {
        r.temperature_c = plant_.temperature_c();
        r.elapsed_s = t + kDt;
        r.converged = true;
        return r;
      }
    } else {
      held = 0.0;
    }
  }
  r.temperature_c = plant_.temperature_c();
  r.elapsed_s = max_seconds;
  r.converged = false;
  return r;
}

}  // namespace vppstudy::softmc
