#include "softmc/trace_dump.hpp"

#include <cstdio>
#include <cstdlib>

#include "softmc/session.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;
using common::JsonValue;

namespace {

[[nodiscard]] bool command_from_name(std::string_view name,
                                     dram::CommandKind& out) {
  constexpr dram::CommandKind kAll[] = {
      dram::CommandKind::kActivate,     dram::CommandKind::kPrecharge,
      dram::CommandKind::kPrechargeAll, dram::CommandKind::kRead,
      dram::CommandKind::kWrite,        dram::CommandKind::kRefresh,
      dram::CommandKind::kNop,
  };
  for (const dram::CommandKind k : kAll) {
    if (dram::command_name(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

[[nodiscard]] std::string hex_encode(
    const std::array<std::uint8_t, dram::kBytesPerColumn>& data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * data.size());
  for (const std::uint8_t b : data) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

[[nodiscard]] bool hex_decode(
    std::string_view hex,
    std::array<std::uint8_t, dram::kBytesPerColumn>& out) {
  if (hex.size() != 2 * out.size()) return false;
  const auto nibble = [](char c, std::uint8_t& v) {
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint8_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint8_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint8_t>(c - 'A' + 10);
    } else {
      return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint8_t hi = 0;
    std::uint8_t lo = 0;
    if (!nibble(hex[2 * i], hi) || !nibble(hex[2 * i + 1], lo)) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

constexpr std::array<std::uint8_t, dram::kBytesPerColumn> kZeroData{};

}  // namespace

TraceDump capture_trace_dump(const Session& session,
                             const common::Error* failure) {
  TraceDump dump;
  dump.module = session.module().profile().name;
  dump.vpp_v = session.vpp();
  dump.temperature_c = session.temperature();
  dump.noise_stream = session.module().noise_stream();
  if (const CommandTraceRecorder* trace = session.trace()) {
    dump.capacity = trace->capacity();
    dump.total_recorded = trace->total_recorded();
    dump.entries = trace->entries();
  }
  if (failure != nullptr) {
    dump.error_code = failure->code;
    dump.error_message = failure->to_string();
  }
  return dump;
}

common::JsonWriter trace_dump_json(const TraceDump& dump) {
  common::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::string(TraceDump::kSchemaPrefix) +
                        std::to_string(dump.version));
  json.kv("module", dump.module);
  json.kv("vpp_v", dump.vpp_v);
  json.kv("temperature_c", dump.temperature_c);
  json.kv("noise_stream", dump.noise_stream);
  json.kv("capacity", static_cast<std::uint64_t>(dump.capacity));
  json.kv("total_recorded", dump.total_recorded);
  if (dump.has_failure()) {
    json.key("failure").begin_object();
    json.kv("code", common::error_code_name(dump.error_code));
    json.kv("message", dump.error_message);
    json.end_object();
  }
  json.key("entries").begin_array();
  for (const TraceEntry& e : dump.entries) {
    json.begin_object();
    json.kv("cmd", dram::command_name(e.kind));
    json.kv("bank", static_cast<std::uint64_t>(e.bank));
    json.kv("row", static_cast<std::uint64_t>(e.row));
    json.kv("col", static_cast<std::uint64_t>(e.column));
    json.kv("at_ns", e.at_ns);
    if (e.kind == dram::CommandKind::kWrite && e.write_data != kZeroData) {
      json.kv("data", hex_encode(e.write_data));
    }
    if (e.loop_count > 0) {
      json.kv("loop_count", e.loop_count);
      json.kv("loop_act_to_act_ns", e.loop_act_to_act_ns);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json;
}

common::Result<TraceDump> parse_trace_dump(const JsonValue& doc) {
  const auto fail = [](std::string what) {
    return Error{ErrorCode::kParseError, "trace dump: " + std::move(what)};
  };
  if (!doc.is_object()) return fail("document is not an object");

  const std::string schema = doc.string_or("schema", "");
  if (schema.rfind(TraceDump::kSchemaPrefix, 0) != 0) {
    return fail("unrecognized schema '" + schema + "'");
  }
  TraceDump dump;
  dump.version = std::atoi(
      schema.substr(TraceDump::kSchemaPrefix.size()).c_str());
  if (dump.version < 1 || dump.version > TraceDump::kVersion) {
    return fail("unsupported version " + std::to_string(dump.version));
  }
  dump.module = doc.string_or("module", "");
  if (dump.module.empty()) return fail("missing module name");
  dump.vpp_v = doc.number_or("vpp_v", 0.0);
  dump.temperature_c = doc.number_or("temperature_c", 0.0);
  dump.noise_stream = doc.uint_or("noise_stream", 0);
  dump.capacity = static_cast<std::size_t>(doc.uint_or("capacity", 0));
  dump.total_recorded = doc.uint_or("total_recorded", 0);

  if (const JsonValue* failure = doc.find("failure")) {
    if (!failure->is_object()) return fail("'failure' is not an object");
    dump.error_code =
        common::error_code_from_name(failure->string_or("code", "kUnknown"));
    dump.error_message = failure->string_or("message", "");
  }

  const JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return fail("missing 'entries' array");
  }
  dump.entries.reserve(entries->items().size());
  for (const JsonValue& item : entries->items()) {
    if (!item.is_object()) return fail("entry is not an object");
    TraceEntry e;
    if (!command_from_name(item.string_or("cmd", ""), e.kind)) {
      return fail("unknown command '" + item.string_or("cmd", "") + "'");
    }
    e.bank = static_cast<std::uint32_t>(item.uint_or("bank", 0));
    e.row = static_cast<std::uint32_t>(item.uint_or("row", 0));
    e.column = static_cast<std::uint32_t>(item.uint_or("col", 0));
    e.at_ns = item.number_or("at_ns", 0.0);
    if (const JsonValue* data = item.find("data")) {
      if (!data->is_string() || !hex_decode(data->as_string(), e.write_data)) {
        return fail("malformed write data");
      }
    }
    e.loop_count = item.uint_or("loop_count", 0);
    e.loop_act_to_act_ns = item.number_or("loop_act_to_act_ns", 0.0);
    dump.entries.push_back(e);
  }
  if (dump.total_recorded < dump.entries.size()) {
    dump.total_recorded = dump.entries.size();
  }
  return dump;
}

common::Result<TraceDump> load_trace_dump(const std::string& path) {
  VPP_ASSIGN_OR_RETURN(common::JsonValue doc, common::parse_json_file(path));
  return parse_trace_dump(doc);
}

bool write_trace_dump(const std::string& path, const TraceDump& dump) {
  return trace_dump_json(dump).write_file(path);
}

}  // namespace vppstudy::softmc
