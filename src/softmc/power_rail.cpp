#include "softmc/power_rail.hpp"

#include <cmath>

namespace vppstudy::softmc {

PowerRail::PowerRail(double initial_v, Limits limits)
    : limits_(limits), voltage_v_(initial_v) {}

common::Expected<double> PowerRail::set_voltage(double volts) {
  if (volts < limits_.min_v - 1e-12 || volts > limits_.max_v + 1e-12) {
    return common::Error{common::ErrorCode::kVppOutOfRange,
                         "requested " + std::to_string(volts) +
                             "V outside instrument range [" +
                             std::to_string(limits_.min_v) + ", " +
                             std::to_string(limits_.max_v) + "]V"};
  }
  const double quantized =
      std::round(volts / limits_.resolution_v) * limits_.resolution_v;
  voltage_v_ = quantized;
  return quantized;
}

double PowerRail::estimate_current_a(double activates_per_s) const noexcept {
  // Static pump leakage plus per-activation wordline charge (order-of-
  // magnitude numbers from DDR4 datasheet IPP specs).
  constexpr double kStaticA = 0.004;
  constexpr double kChargePerActC = 40e-12;
  return kStaticA + kChargePerActC * activates_per_s * voltage_v_ / 2.5;
}

}  // namespace vppstudy::softmc
