#include "softmc/row_ops.hpp"

#include <algorithm>
#include <array>

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;

common::Expected<Program> RowOps::init_row(
    std::uint32_t bank, std::uint32_t row,
    const std::vector<std::uint8_t>& image) const {
  if (image.size() != dram::kBytesPerRow) {
    return Error{ErrorCode::kBadRowImage,
                 "row image must be exactly one row (" +
                     std::to_string(dram::kBytesPerRow) + " bytes), got " +
                     std::to_string(image.size())}
        .with_bank_row(static_cast<std::int32_t>(bank), row);
  }
  Program p(timing_);
  p.reserve(dram::kColumnsPerRow + 2);
  p.act(bank, row);
  // Burst writes back-to-back at 4-clock column spacing.
  const double spacing = column_spacing_ns();
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    std::array<std::uint8_t, dram::kBytesPerColumn> word{};
    std::copy_n(image.begin() + c * dram::kBytesPerColumn,
                dram::kBytesPerColumn, word.begin());
    p.wr(bank, c, word, c == 0 ? timing_.t_rcd_ns : spacing);
  }
  p.pre(bank, timing_.t_wr_ns + spacing);
  return p;
}

Program RowOps::read_row(std::uint32_t bank, std::uint32_t row,
                         double trcd_ns) const {
  Program p(timing_);
  p.reserve(dram::kColumnsPerRow + 2);
  p.act(bank, row);
  const double first_delay = trcd_ns > 0.0 ? trcd_ns : timing_.t_rcd_ns;
  const double spacing = column_spacing_ns();
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    p.rd(bank, c, c == 0 ? first_delay : spacing);
  }
  p.pre(bank, timing_.t_rtp_ns);
  return p;
}

Program RowOps::read_column(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t column, double trcd_ns) const {
  Program p(timing_);
  p.act(bank, row);
  p.rd(bank, column, trcd_ns);  // possibly < nominal: the experiment
  p.pre(bank, std::max(timing_.t_ras_ns - trcd_ns, timing_.t_rtp_ns));
  return p;
}

Program RowOps::hammer_pair(std::uint32_t bank, std::uint32_t row_a,
                            std::uint32_t row_b, std::uint64_t count,
                            double act_to_act_ns) const {
  Program p(timing_);
  p.hammer(bank, row_a, row_b, count, act_to_act_ns);
  return p;
}

Program RowOps::wait(double ns, bool ref_after) const {
  Program p(timing_);
  p.wait_ns(ns);
  if (ref_after) p.ref(timing_.t_rp_ns);
  return p;
}

}  // namespace vppstudy::softmc
