// The session observer interface: the command stream is the observable
// artifact of the methodology (every deliberate timing violation, hammer
// loop, and failure mode of sections 4.1-4.3 is a sequence of DDR4 commands
// the host issues). The CommandDispatcher notifies observers of every
// command, hammer loop, timing violation, device error, and clock advance;
// TimingChecker is the first observer, CommandTraceRecorder and
// SessionCounters ride on the same hooks, and later work (fault injection,
// trace-driven replay) plugs in without touching the dispatch loop.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "softmc/program.hpp"

namespace vppstudy::softmc {

/// One JEDEC timing rule a command would have broken. Deliberate violations
/// are the methodology, so these are observations, never failures.
struct TimingViolation {
  std::string rule;       ///< e.g. "tRCD"
  std::uint32_t bank = 0;
  double required_ns = 0.0;
  double actual_ns = 0.0;
  double at_ns = 0.0;
};

/// Hook interface for the command dispatch loop. All callbacks default to
/// no-ops so observers override only what they need. Callback order per
/// instruction: on_clock_advance (as the command clock moves to issue
/// time), on_command (at issue, before the device acts), then -- after the
/// device acts -- on_hammer for loop instructions, on_violation for each
/// new timing violation, and on_error if the device rejected the command.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;

  /// The command clock moved from `from_ns` to `to_ns`.
  virtual void on_clock_advance(double from_ns, double to_ns) {
    (void)from_ns;
    (void)to_ns;
  }
  /// An instruction issues at `now_ns`. Hammer loops (loop_count > 0)
  /// surface here once at loop start; their activations are reported via
  /// on_hammer when the loop retires.
  virtual void on_command(const Instruction& inst, double now_ns) {
    (void)inst;
    (void)now_ns;
  }
  /// A hammer loop retired: `count` activations of each aggressor at
  /// `act_to_act_ns` spacing between start_ns and end_ns.
  virtual void on_hammer(std::uint32_t bank, std::uint64_t count,
                         double act_to_act_ns, double start_ns,
                         double end_ns) {
    (void)bank;
    (void)count;
    (void)act_to_act_ns;
    (void)start_ns;
    (void)end_ns;
  }
  /// The timing checker flagged a JEDEC rule.
  virtual void on_violation(const TimingViolation& violation) {
    (void)violation;
  }
  /// The device rejected a command; execution aborts after this call.
  virtual void on_error(const common::Error& error, double now_ns) {
    (void)error;
    (void)now_ns;
  }
};

}  // namespace vppstudy::softmc
