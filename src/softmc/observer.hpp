// The session observer interface: the command stream is the observable
// artifact of the methodology (every deliberate timing violation, hammer
// loop, and failure mode of sections 4.1-4.3 is a sequence of DDR4 commands
// the host issues). The CommandDispatcher notifies observers of every
// command, hammer loop, timing violation, device error, and clock advance;
// TimingChecker is the first observer, CommandTraceRecorder and
// SessionCounters ride on the same hooks, and FaultInjector plugs in via the
// active CommandInterceptor hook below to perturb commands before the device
// (and the observers) see them.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "dram/types.hpp"
#include "softmc/program.hpp"

namespace vppstudy::softmc {

/// One JEDEC timing rule a command would have broken. Deliberate violations
/// are the methodology, so these are observations, never failures.
struct TimingViolation {
  std::string rule;       ///< e.g. "tRCD"
  std::uint32_t bank = 0;
  double required_ns = 0.0;
  double actual_ns = 0.0;
  double at_ns = 0.0;
};

/// Hook interface for the command dispatch loop. All callbacks default to
/// no-ops so observers override only what they need. Callback order per
/// instruction: on_clock_advance (as the command clock moves to issue
/// time), on_command (at issue, before the device acts), then -- after the
/// device acts -- on_hammer for loop instructions, on_violation for each
/// new timing violation, and on_error if the device rejected the command.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;

  /// The command clock moved from `from_ns` to `to_ns`.
  virtual void on_clock_advance(double from_ns, double to_ns) {
    (void)from_ns;
    (void)to_ns;
  }
  /// An instruction issues at `now_ns`. Hammer loops (loop_count > 0)
  /// surface here once at loop start; their activations are reported via
  /// on_hammer when the loop retires.
  virtual void on_command(const Instruction& inst, double now_ns) {
    (void)inst;
    (void)now_ns;
  }
  /// A hammer loop retired: `count` activations of each aggressor at
  /// `act_to_act_ns` spacing between start_ns and end_ns.
  virtual void on_hammer(std::uint32_t bank, std::uint64_t count,
                         double act_to_act_ns, double start_ns,
                         double end_ns) {
    (void)bank;
    (void)count;
    (void)act_to_act_ns;
    (void)start_ns;
    (void)end_ns;
  }
  /// A single-row hammer loop retired: `count` activations of ONE row (the
  /// burst primitive of non-uniform pattern specs, encoded as a loop with
  /// loop_row_b == row). Defaults to forwarding into on_hammer so existing
  /// observers keep correct timing semantics; observers that count
  /// *activations* (which on_hammer doubles) must override.
  virtual void on_hammer_single(std::uint32_t bank, std::uint64_t count,
                                double act_to_act_ns, double start_ns,
                                double end_ns) {
    on_hammer(bank, count, act_to_act_ns, start_ns, end_ns);
  }
  /// The timing checker flagged a JEDEC rule.
  virtual void on_violation(const TimingViolation& violation) {
    (void)violation;
  }
  /// The device rejected a command; execution aborts after this call.
  virtual void on_error(const common::Error& error, double now_ns) {
    (void)error;
    (void)now_ns;
  }
};

/// Active counterpart to the passive SessionObserver: consulted by the
/// dispatcher *before* each instruction is scheduled, it may mutate the
/// instruction in flight (timing, addresses), drop it (the command leaves
/// the host but never reaches the device -- observers do not see it, so a
/// recorded trace mirrors the device's view and stays replayable), duplicate
/// it, or fail it with a typed error as if the device had rejected it. After
/// a successful RD it may additionally corrupt the returned burst. Exactly
/// one interceptor can be active per dispatcher; softmc::FaultInjector is
/// the canonical implementation.
class CommandInterceptor {
 public:
  enum class Action : std::uint8_t {
    kPass,       ///< issue the (possibly mutated) instruction normally
    kDrop,       ///< time passes, but the device never sees the command
    kDuplicate,  ///< issue twice, one command slot apart
    kFail,       ///< abort execution with `Decision::error`
  };
  struct Decision {
    Action action = Action::kPass;
    common::Error error;  ///< only meaningful for kFail
  };

  virtual ~CommandInterceptor() = default;

  /// Called once per program instruction (before the command clock advances
  /// to its issue time). `inst` is a mutable copy; edits apply to this issue
  /// only.
  virtual Decision intercept(Instruction& inst, double now_ns) = 0;

  /// Called after the device successfully returned a read burst; may flip
  /// bits in `data` (silent corruption -- no typed error is raised).
  virtual void corrupt_read(std::uint32_t bank, std::uint32_t column,
                            std::array<std::uint8_t, dram::kBytesPerColumn>& data,
                            double now_ns) {
    (void)bank;
    (void)column;
    (void)data;
    (void)now_ns;
  }
};

}  // namespace vppstudy::softmc
