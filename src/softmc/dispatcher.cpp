#include "softmc/dispatcher.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;
using common::Status;

CommandDispatcher::CommandDispatcher(
    dram::Module& module, const std::vector<TimingViolation>& violation_log)
    : module_(module), violation_log_(violation_log) {}

void CommandDispatcher::add_observer(SessionObserver* observer) {
  if (observer == nullptr) return;
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

void CommandDispatcher::remove_observer(SessionObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void CommandDispatcher::advance(double& clock_ns, double ns) {
  const double from = clock_ns;
  clock_ns += ns;
  for (SessionObserver* obs : observers_) obs->on_clock_advance(from, clock_ns);
}

void CommandDispatcher::notify_command(const Instruction& inst,
                                       double now_ns) {
  for (SessionObserver* obs : observers_) obs->on_command(inst, now_ns);
}

void CommandDispatcher::notify_new_violations(std::size_t watermark) {
  for (std::size_t i = watermark; i < violation_log_.size(); ++i) {
    for (SessionObserver* obs : observers_) {
      obs->on_violation(violation_log_[i]);
    }
  }
}

bool CommandDispatcher::issue_one(const Instruction& inst,
                                  ExecutionResult& result, double& clock_ns) {
  // The timing checker is the first observer: it sees the command at its
  // issue timestamp before the device acts on it (hammer loops are
  // checked when the loop retires, via on_hammer below).
  std::size_t watermark = violation_log_.size();
  notify_command(inst, clock_ns);
  notify_new_violations(watermark);

  Status st;
  switch (inst.kind) {
    case dram::CommandKind::kActivate:
      if (inst.loop_count > 0) {
        const double start = clock_ns;
        double now = clock_ns;
        // loop_row_b == row is the single-row burst encoding
        // (Program::hammer_single); hammer_pair rejects identical rows.
        const bool single = inst.loop_row_b == inst.row;
        st = single ? module_.hammer_single(inst.bank, inst.row,
                                            inst.loop_count,
                                            inst.loop_act_to_act_ns, now)
                    : module_.hammer_pair(inst.bank, inst.row, inst.loop_row_b,
                                          inst.loop_count,
                                          inst.loop_act_to_act_ns, now);
        watermark = violation_log_.size();
        for (SessionObserver* obs : observers_) {
          if (single) {
            obs->on_hammer_single(inst.bank, inst.loop_count,
                                  inst.loop_act_to_act_ns, start, now);
          } else {
            obs->on_hammer(inst.bank, inst.loop_count,
                           inst.loop_act_to_act_ns, start, now);
          }
        }
        notify_new_violations(watermark);
        const double from = clock_ns;
        clock_ns = now;
        for (SessionObserver* obs : observers_) {
          obs->on_clock_advance(from, clock_ns);
        }
      } else {
        st = module_.activate(inst.bank, inst.row, clock_ns);
      }
      break;
    case dram::CommandKind::kPrecharge:
      st = module_.precharge(inst.bank, clock_ns);
      break;
    case dram::CommandKind::kPrechargeAll:
      st = module_.precharge_all(clock_ns);
      break;
    case dram::CommandKind::kRead: {
      auto data = module_.read(inst.bank, inst.column, clock_ns);
      if (!data) {
        st = std::move(data).error();
      } else {
        if (interceptor_ != nullptr) {
          interceptor_->corrupt_read(inst.bank, inst.column, *data, clock_ns);
        }
        result.reads.push_back(*data);
      }
      break;
    }
    case dram::CommandKind::kWrite:
      st = module_.write(inst.bank, inst.column, inst.write_data, clock_ns);
      break;
    case dram::CommandKind::kRefresh:
      st = module_.refresh(clock_ns);
      break;
    case dram::CommandKind::kNop:
      break;
  }
  if (!st.ok()) {
    result.status = std::move(st)
                        .error()
                        .with_op(dram::command_name(inst.kind))
                        .with_bank(static_cast<std::int32_t>(inst.bank));
    for (SessionObserver* obs : observers_) {
      obs->on_error(result.status.error(), clock_ns);
    }
    return false;
  }
  return true;
}

ExecutionResult CommandDispatcher::execute(const Program& program,
                                           double& clock_ns) {
  ExecutionResult result;
  result.reads.reserve(program.read_count());
  const std::size_t violations_before = violation_log_.size();
  for (const Instruction& original : program.instructions()) {
    // With no interceptor this loop body reduces to advance + issue_one on
    // the original instruction -- no copy, identical behavior to the
    // pre-interceptor dispatch loop.
    Instruction mutated;
    const Instruction* inst = &original;
    CommandInterceptor::Decision decision;
    if (interceptor_ != nullptr) {
      mutated = original;
      decision = interceptor_->intercept(mutated, clock_ns);
      inst = &mutated;
    }

    advance(clock_ns, inst->slots_after_previous * common::kCommandSlotNs);
    if (inst->extra_wait_ns > 0.0) advance(clock_ns, inst->extra_wait_ns);

    if (decision.action == CommandInterceptor::Action::kDrop) {
      // The command left the host but never reached the device: time still
      // passes, but no observer sees it (the trace ring must mirror the
      // device's view so a captured dump replays the failure faithfully).
      continue;
    }
    if (decision.action == CommandInterceptor::Action::kFail) {
      result.status = std::move(decision.error)
                          .with_op(dram::command_name(inst->kind))
                          .with_bank(static_cast<std::int32_t>(inst->bank));
      for (SessionObserver* obs : observers_) {
        obs->on_error(result.status.error(), clock_ns);
      }
      break;
    }

    if (!issue_one(*inst, result, clock_ns)) break;
    if (decision.action == CommandInterceptor::Action::kDuplicate) {
      advance(clock_ns, common::kCommandSlotNs);
      if (!issue_one(*inst, result, clock_ns)) break;
    }
  }
  result.timing_violations = violation_log_.size() - violations_before;
  return result;
}

}  // namespace vppstudy::softmc
