#include "softmc/program.hpp"

#include <cmath>

#include "common/units.hpp"

namespace vppstudy::softmc {

Program::Program(dram::Ddr4Timing timing) : timing_(timing) {}

std::uint32_t Program::slots_for(double ns) noexcept {
  if (ns <= 0.0) return 1;
  return static_cast<std::uint32_t>(
      std::ceil(ns / common::kCommandSlotNs - 1e-9));
}

Program& Program::push(Instruction inst, double default_delay_ns,
                       double delay_ns) {
  const double d = delay_ns < 0.0 ? default_delay_ns : delay_ns;
  inst.slots_after_previous = slots_for(d);
  instructions_.push_back(inst);
  return *this;
}

Program& Program::act(std::uint32_t bank, std::uint32_t row, double delay_ns) {
  Instruction i;
  i.kind = dram::CommandKind::kActivate;
  i.bank = bank;
  i.row = row;
  // Default: a full tRP has elapsed since whatever came before.
  return push(i, timing_.t_rp_ns, delay_ns);
}

Program& Program::pre(std::uint32_t bank, double delay_ns) {
  Instruction i;
  i.kind = dram::CommandKind::kPrecharge;
  i.bank = bank;
  return push(i, timing_.t_ras_ns, delay_ns);
}

Program& Program::rd(std::uint32_t bank, std::uint32_t column,
                     double delay_ns) {
  // Built in place: RD/WR are the per-column hot path of row-granularity
  // programs (1024 of them per row), so skip push()'s extra 72-byte copy.
  Instruction& i = instructions_.emplace_back();
  i.kind = dram::CommandKind::kRead;
  i.bank = bank;
  i.column = column;
  i.slots_after_previous =
      slots_for(delay_ns < 0.0 ? timing_.t_rcd_ns : delay_ns);
  ++read_count_;
  return *this;
}

Program& Program::wr(std::uint32_t bank, std::uint32_t column,
                     std::array<std::uint8_t, dram::kBytesPerColumn> data,
                     double delay_ns) {
  Instruction& i = instructions_.emplace_back();
  i.kind = dram::CommandKind::kWrite;
  i.bank = bank;
  i.column = column;
  i.write_data = data;
  i.slots_after_previous =
      slots_for(delay_ns < 0.0 ? timing_.t_rcd_ns : delay_ns);
  return *this;
}

Program& Program::ref(double delay_ns) {
  Instruction i;
  i.kind = dram::CommandKind::kRefresh;
  return push(i, timing_.t_rp_ns, delay_ns);
}

Program& Program::wait_ns(double ns) {
  Instruction i;
  i.kind = dram::CommandKind::kNop;
  i.slots_after_previous = 1;
  i.extra_wait_ns = ns;
  instructions_.push_back(i);
  return *this;
}

Program& Program::hammer(std::uint32_t bank, std::uint32_t row_a,
                         std::uint32_t row_b, std::uint64_t count,
                         double act_to_act_ns) {
  Instruction i;
  i.kind = dram::CommandKind::kActivate;
  i.bank = bank;
  i.row = row_a;
  i.loop_row_b = row_b;
  i.loop_count = count;
  i.loop_act_to_act_ns =
      act_to_act_ns > 0.0 ? act_to_act_ns : timing_.t_rc_ns;
  return push(i, timing_.t_rp_ns, -1.0);
}

Program& Program::hammer_single(std::uint32_t bank, std::uint32_t row,
                                std::uint64_t count, double act_to_act_ns) {
  Instruction i;
  i.kind = dram::CommandKind::kActivate;
  i.bank = bank;
  i.row = row;
  i.loop_row_b = row;
  i.loop_count = count;
  i.loop_act_to_act_ns =
      act_to_act_ns > 0.0 ? act_to_act_ns : timing_.t_rc_ns;
  return push(i, timing_.t_rp_ns, -1.0);
}

}  // namespace vppstudy::softmc
