// RowOps: the shared program builders behind the session's convenience
// operations (init_row / read_row / read_column_with_trcd /
// hammer_double_sided / wait_ms). One place owns the burst spacing and
// default-latency arithmetic, so the harness and the session can never
// drift apart on how a "read the whole row" program is constructed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "dram/timing.hpp"
#include "dram/types.hpp"
#include "softmc/program.hpp"

namespace vppstudy::softmc {

class RowOps {
 public:
  explicit RowOps(dram::Ddr4Timing timing) : timing_(timing) {}

  [[nodiscard]] const dram::Ddr4Timing& timing() const noexcept {
    return timing_;
  }

  /// Back-to-back burst spacing on the column bus: 4 clocks.
  [[nodiscard]] double column_spacing_ns() const noexcept {
    return 4.0 * timing_.t_ck_ns;
  }

  /// ACT + kColumnsPerRow WR + PRE with nominal timing. Fails with
  /// kBadRowImage when `image` is not exactly one row.
  [[nodiscard]] common::Expected<Program> init_row(
      std::uint32_t bank, std::uint32_t row,
      const std::vector<std::uint8_t>& image) const;

  /// ACT + kColumnsPerRow RD + PRE. `trcd_ns <= 0` uses the nominal tRCD.
  [[nodiscard]] Program read_row(std::uint32_t bank, std::uint32_t row,
                                 double trcd_ns = -1.0) const;

  /// One ACT + single-column RD at an explicit (possibly violating) tRCD,
  /// then PRE (Alg. 2's inner access).
  [[nodiscard]] Program read_column(std::uint32_t bank, std::uint32_t row,
                                    std::uint32_t column,
                                    double trcd_ns) const;

  /// Double-sided hammer loop. `act_to_act_ns <= 0` uses the nominal tRC.
  [[nodiscard]] Program hammer_pair(std::uint32_t bank, std::uint32_t row_a,
                                    std::uint32_t row_b, std::uint64_t count,
                                    double act_to_act_ns = -1.0) const;

  /// Idle wait, optionally followed by one REF (retention tests interleave
  /// REFs at tREFI when auto refresh is on).
  [[nodiscard]] Program wait(double ns, bool ref_after = false) const;

 private:
  dram::Ddr4Timing timing_;
};

}  // namespace vppstudy::softmc
