// The SoftMC host session: owns the device under test, the external VPP
// supply, the thermal chamber, a monotonically advancing command clock, and
// the command dispatcher with its observer chain (timing checker first, then
// always-on command counters, then an optional trace recorder). The
// characterization harness (src/harness) talks only to this class -- the
// same boundary the paper's host software has against the FPGA.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/expected.hpp"
#include "dram/module.hpp"
#include "dram/timing.hpp"
#include "softmc/counters.hpp"
#include "softmc/dispatcher.hpp"
#include "softmc/power_rail.hpp"
#include "softmc/program.hpp"
#include "softmc/row_ops.hpp"
#include "softmc/thermal.hpp"
#include "softmc/timing_checker.hpp"
#include "softmc/trace_recorder.hpp"

namespace vppstudy::softmc {

class FaultInjector;

class Session {
 public:
  /// Takes ownership of the module (the DIMM seated on the interposer).
  explicit Session(dram::ModuleProfile profile);

  [[nodiscard]] dram::Module& module() noexcept { return module_; }
  [[nodiscard]] const dram::Module& module() const noexcept { return module_; }
  [[nodiscard]] const dram::Ddr4Timing& timing() const noexcept {
    return timing_;
  }
  [[nodiscard]] double clock_ns() const noexcept { return clock_ns_; }

  // --- Rig control -----------------------------------------------------------
  /// Program the external VPP supply; fails with kVppOutOfRange when the
  /// voltage is outside the instrument's range, kModuleUnresponsive when
  /// the module stops responding at this level.
  common::Status set_vpp(double vpp_v);
  [[nodiscard]] double vpp() const noexcept { return rail_.voltage(); }
  /// Drive the heater pads to a setpoint (blocks until the PID settles);
  /// fails with kThermalTimeout when it does not converge.
  common::Status set_temperature(double temp_c);
  [[nodiscard]] double temperature() const noexcept {
    return chamber_.temperature_c();
  }
  /// Refresh management: the characterization tests disable refresh, which
  /// is also what neutralizes on-die TRR (section 4.1).
  void set_auto_refresh(bool enabled) noexcept { auto_refresh_ = enabled; }
  /// Re-key the device's sequential measurement-noise draws. The parallel
  /// sweep engine calls this once per (module, VPP level) job so every job
  /// owns an independent, deterministic noise stream (dram::Module docs).
  void set_noise_stream(std::uint64_t stream) noexcept {
    module_.set_noise_stream(stream);
  }

  // --- Program execution -------------------------------------------------------
  [[nodiscard]] ExecutionResult execute(const Program& program) {
    return dispatcher_.execute(program, clock_ns_);
  }

  [[nodiscard]] const std::vector<TimingViolation>& violations() const noexcept {
    return checker_.violations();
  }
  void clear_violations() { checker_.clear_violations(); }

  // --- Instrumentation ---------------------------------------------------------
  /// Always-on command counters (see softmc/counters.hpp).
  [[nodiscard]] const CommandCounts& counters() const noexcept {
    return counters_.counts();
  }
  void reset_counters() noexcept { counters_.reset(); }

  /// Attach a command trace ring buffer (replacing any previous one).
  void enable_trace(std::size_t capacity = CommandTraceRecorder::kDefaultCapacity);
  void disable_trace();
  /// nullptr unless enable_trace() was called.
  [[nodiscard]] const CommandTraceRecorder* trace() const noexcept {
    return trace_.get();
  }

  /// Attach a fault injector: registered as the dispatcher's command
  /// interceptor and as an observer (replacing any previous injector).
  /// Borrowed -- must outlive the session or be detached with nullptr.
  void set_fault_injector(FaultInjector* injector);
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  /// Register an external observer (fault injectors, custom metrics). The
  /// observer is borrowed and must outlive the session (or be removed).
  void add_observer(SessionObserver* observer) {
    dispatcher_.add_observer(observer);
  }
  void remove_observer(SessionObserver* observer) {
    dispatcher_.remove_observer(observer);
  }

  // --- Convenience operations used by the harness -----------------------------
  // All are thin wrappers over RowOps program builders + execute().
  /// ACT + 1024 WR + PRE with nominal timing.
  common::Status init_row(std::uint32_t bank, std::uint32_t row,
                          const std::vector<std::uint8_t>& image);
  /// ACT + 1024 RD + PRE; returns the full 8KB row. `trcd_ns <= 0` uses the
  /// nominal tRCD. Characterization harnesses pass a generous latency so
  /// verification reads cannot be corrupted by marginal activation timing
  /// (isolating the effect under test, section 4.1). Fails with
  /// kReadUnderrun if the device returned fewer bursts than requested.
  common::Expected<std::vector<std::uint8_t>> read_row(std::uint32_t bank,
                                                       std::uint32_t row,
                                                       double trcd_ns = -1.0);
  /// One ACT + single-column RD at an explicit (possibly violating) tRCD,
  /// then PRE. Returns the 8 bytes read (Alg. 2's inner access).
  common::Expected<std::array<std::uint8_t, dram::kBytesPerColumn>>
  read_column_with_trcd(std::uint32_t bank, std::uint32_t row,
                        std::uint32_t column, double trcd_ns);
  /// Double-sided hammer: `count` alternating activations of each aggressor.
  /// `act_to_act_ns <= 0` uses the nominal tRC spacing.
  common::Status hammer_double_sided(std::uint32_t bank, std::uint32_t row_a,
                                     std::uint32_t row_b, std::uint64_t count,
                                     double act_to_act_ns = -1.0);
  /// Idle wait (retention tests). Issues REFs during the wait when auto
  /// refresh is enabled.
  common::Status wait_ms(double ms);

  /// Return the rig to the state of a freshly constructed Session(profile):
  /// pristine rail and thermal chamber, cleared timing history and counters,
  /// trace and fault injector detached, command clock at zero, auto-refresh
  /// off, and the device power-cycled (dram::Module::reset_device_state --
  /// which retains the per-row physics caches, the whole point of reuse).
  /// A reused session is bit-identical to a fresh one; core/parallel_study
  /// keeps one Session per (worker, module) arena slot across shard jobs on
  /// the strength of this, and the tier-1 suite asserts the equivalence.
  void reset_for_job();

 private:
  dram::Module module_;
  dram::Ddr4Timing timing_;
  PowerRail rail_;
  ThermalChamber chamber_;
  TimingChecker checker_;
  SessionCounters counters_;
  std::unique_ptr<CommandTraceRecorder> trace_;
  CommandDispatcher dispatcher_;
  RowOps ops_;
  FaultInjector* injector_ = nullptr;
  double clock_ns_ = 0.0;
  bool auto_refresh_ = false;
};

}  // namespace vppstudy::softmc
