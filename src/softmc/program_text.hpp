// Text (de)serialization of SoftMC programs -- the equivalent of DRAM
// Bender's program files. Lets test sequences ship as data, be diffed in
// review, and be replayed by vppctl or the examples.
//
// Format: one instruction per line,
//   ACT  <bank> <row> [@<delay_ns>]
//   PRE  <bank>       [@<delay_ns>]
//   RD   <bank> <col> [@<delay_ns>]
//   WR   <bank> <col> <16 hex digits> [@<delay_ns>]
//   REF               [@<delay_ns>]
//   WAIT <ns>
//   HAMMER <bank> <rowA> <rowB> <count>
// '#' starts a comment; blank lines are ignored. A missing @delay uses the
// builder's nominal-timing default.
#pragma once

#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "softmc/program.hpp"

namespace vppstudy::softmc {

/// Render a program to the text format (always with explicit @slots-derived
/// delays so a round trip is exact).
[[nodiscard]] std::string program_to_text(const Program& program);

/// Parse the text format. Returns a descriptive error with the offending
/// line number on malformed input.
[[nodiscard]] common::Expected<Program> program_from_text(
    std::string_view text, const dram::Ddr4Timing& timing);

}  // namespace vppstudy::softmc
