// TraceReplayer: feed a captured TraceDump back through a fresh Session,
// reproducing the original command stream at its exact absolute timestamps.
// Because the trace ring records the *device's* view (dropped commands never
// reach it), replaying a dump captured from a fault-injected run reproduces
// the same typed failure without the injector present -- the repro loop the
// `vppctl replay` subcommand and the replay-fuzz CI job are built on.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/expected.hpp"
#include "dram/module.hpp"
#include "dram/profile.hpp"
#include "softmc/counters.hpp"
#include "softmc/trace_dump.hpp"

namespace vppstudy::softmc {

class Session;

/// What a replay run produced, against what the dump recorded.
struct ReplayReport {
  std::uint64_t commands_replayed = 0;  ///< entries issued before any failure
  CommandCounts counters;               ///< replay session's command tally
  dram::ModuleStats stats;              ///< replay device's stats
  std::size_t timing_violations = 0;

  bool original_failed = false;  ///< the dump recorded a failure
  common::ErrorCode original_code = common::ErrorCode::kUnknown;
  bool replay_failed = false;
  common::ErrorCode replay_code = common::ErrorCode::kUnknown;
  std::string replay_message;

  /// The ring had overwritten the oldest commands, so the replayed prefix
  /// is incomplete and reproduction is best-effort.
  bool truncated = false;

  /// Did the replay land where the original run did? A failing dump must
  /// fail with the same ErrorCode; a clean dump must replay cleanly.
  [[nodiscard]] bool reproduced() const noexcept {
    if (original_failed) {
      return replay_failed && replay_code == original_code;
    }
    return !replay_failed;
  }
};

class TraceReplayer {
 public:
  explicit TraceReplayer(TraceDump dump) : dump_(std::move(dump)) {}

  [[nodiscard]] const TraceDump& dump() const noexcept { return dump_; }

  /// Replay into a caller-prepared session whose rig state (module, VPP,
  /// temperature, noise stream) already matches the dump. Counters and
  /// violations are reset first so the report reflects the replay alone.
  /// Fails with kParseError when the dump's timestamps are non-monotonic
  /// (or start before the session clock).
  [[nodiscard]] common::Result<ReplayReport> replay(Session& session);

  /// Build a fresh session on `profile`, restore the dump's rig state
  /// (noise stream, temperature, VPP), and replay. A module that refuses
  /// the dump's VPP reproduces a kModuleUnresponsive failure dump without
  /// issuing a single command; any other rig-setup error propagates.
  [[nodiscard]] common::Result<ReplayReport> replay_on_profile(
      const dram::ModuleProfile& profile);

 private:
  TraceDump dump_;
};

}  // namespace vppstudy::softmc
