// Versioned trace dumps: serialize a CommandTraceRecorder ring (plus the rig
// state needed to reproduce it -- module, VPP, temperature, noise stream,
// and the failure that triggered the capture) to a JSON document via
// common::JsonWriter, and parse it back with the common JSON parser. This is
// the repro artifact of the methodology: when a sweep dies under reduced-VPP
// misbehavior, the dump is what `vppctl replay` feeds back through a fresh
// session to reproduce the failing command sequence in isolation
// (softmc/trace_replayer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/expected.hpp"
#include "common/json.hpp"
#include "softmc/trace_recorder.hpp"

namespace vppstudy::softmc {

class Session;

/// A serialized command trace plus the rig state that produced it.
/// Format stability: `schema` is "vppstudy-trace-dump/<version>"; parsers
/// reject dumps whose major version they do not understand, and unknown
/// object keys are ignored so the format can grow compatibly.
struct TraceDump {
  static constexpr int kVersion = 1;
  static constexpr std::string_view kSchemaPrefix = "vppstudy-trace-dump/";

  int version = kVersion;
  std::string module;          ///< profile name, e.g. "B3"
  double vpp_v = 0.0;
  double temperature_c = 0.0;
  std::uint64_t noise_stream = 0;
  std::size_t capacity = 0;          ///< ring capacity at capture time
  std::uint64_t total_recorded = 0;  ///< commands seen over the ring's life
  /// The failure this dump captured; kUnknown with an empty message means
  /// the trace was captured from a clean run.
  common::ErrorCode error_code = common::ErrorCode::kUnknown;
  std::string error_message;
  std::vector<TraceEntry> entries;  ///< oldest first

  /// True when the ring overwrote older commands: the replayed prefix is
  /// missing, so replay is best-effort (documented in docs/MODEL.md).
  [[nodiscard]] bool truncated() const noexcept {
    return total_recorded > entries.size();
  }
  [[nodiscard]] bool has_failure() const noexcept {
    return error_code != common::ErrorCode::kUnknown || !error_message.empty();
  }

  friend bool operator==(const TraceDump&, const TraceDump&) = default;
};

/// Snapshot the session's trace ring and rig state. `failure`, when given,
/// is the error that aborted the run (recorded so replay can assert it
/// reproduces). The session must have an enabled trace; otherwise the dump
/// has no entries.
[[nodiscard]] TraceDump capture_trace_dump(
    const Session& session, const common::Error* failure = nullptr);

/// Render as a JSON document.
[[nodiscard]] common::JsonWriter trace_dump_json(const TraceDump& dump);

/// Parse a dump from a JSON document / file. Fails with kParseError on
/// malformed or version-incompatible input.
[[nodiscard]] common::Result<TraceDump> parse_trace_dump(
    const common::JsonValue& doc);
[[nodiscard]] common::Result<TraceDump> load_trace_dump(
    const std::string& path);

/// Write the dump to `path`; false on I/O failure.
[[nodiscard]] bool write_trace_dump(const std::string& path,
                                    const TraceDump& dump);

}  // namespace vppstudy::softmc
