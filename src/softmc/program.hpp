// SoftMC-style instruction programs. A test is a list of DDR4 commands, each
// scheduled a number of 1.5ns command slots after its predecessor (our FPGA
// interface can issue one command per 1.5ns, section 4.3 footnote 10).
// Builders default to nominal DDR4 timing; characterization tests override
// the slot counts to *violate* timing deliberately -- that flexibility is the
// entire reason the study uses an FPGA platform instead of a CPU.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/timing.hpp"
#include "dram/types.hpp"

namespace vppstudy::softmc {

struct Instruction {
  dram::CommandKind kind = dram::CommandKind::kNop;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
  std::array<std::uint8_t, dram::kBytesPerColumn> write_data{};
  /// Command slots (1.5ns each) after the previous instruction issues.
  std::uint32_t slots_after_previous = 1;
  /// kNop only: extra idle time (used for retention waits; slots would
  /// overflow for multi-second waits).
  double extra_wait_ns = 0.0;
  /// Hammer-loop extension (maps to SoftMC's LOOP construct): when
  /// loop_count > 0, this ACT alternates (row, loop_row_b) loop_count times
  /// each with loop_act_to_act_ns spacing.
  std::uint64_t loop_count = 0;
  std::uint32_t loop_row_b = 0;
  double loop_act_to_act_ns = 0.0;
};

/// Fluent builder for instruction sequences.
class Program {
 public:
  explicit Program(dram::Ddr4Timing timing);

  [[nodiscard]] const dram::Ddr4Timing& timing() const noexcept {
    return timing_;
  }
  [[nodiscard]] const std::vector<Instruction>& instructions() const noexcept {
    return instructions_;
  }
  /// Number of RD instructions: lets the executor pre-size its read-burst
  /// buffer (a 1024-column row read would otherwise reallocate ~10 times).
  [[nodiscard]] std::size_t read_count() const noexcept { return read_count_; }

  /// Convert a latency in ns to command slots, rounding *up* (the FPGA can
  /// only lengthen timing to the next 1.5ns boundary).
  [[nodiscard]] static std::uint32_t slots_for(double ns) noexcept;

  /// Pre-size the instruction list (row-granularity builders know their
  /// command count up front; 1024-column bursts would reallocate ~10 times).
  Program& reserve(std::size_t n) {
    instructions_.reserve(n);
    return *this;
  }

  /// Append a pre-built instruction verbatim -- the slot count and
  /// extra_wait_ns are taken as-is, with no nominal-timing defaults. This is
  /// the trace-replay path (softmc/trace_replayer): a dump entry's absolute
  /// timestamp is reproduced exactly by computing the wait externally, which
  /// slots_for()'s round-up would distort.
  Program& push_raw(Instruction inst) {
    if (inst.kind == dram::CommandKind::kRead) ++read_count_;
    instructions_.push_back(inst);
    return *this;
  }

  Program& act(std::uint32_t bank, std::uint32_t row, double delay_ns = -1.0);
  Program& pre(std::uint32_t bank, double delay_ns = -1.0);
  Program& rd(std::uint32_t bank, std::uint32_t column, double delay_ns = -1.0);
  Program& wr(std::uint32_t bank, std::uint32_t column,
              std::array<std::uint8_t, dram::kBytesPerColumn> data,
              double delay_ns = -1.0);
  Program& ref(double delay_ns = -1.0);
  Program& wait_ns(double ns);
  /// Double-sided hammer loop: ACT/PRE row_a and row_b alternately,
  /// `count` times each. `act_to_act_ns <= 0` uses the nominal tRC; larger
  /// spacings keep each aggressor open longer (RowPress-style on-time
  /// experiments).
  Program& hammer(std::uint32_t bank, std::uint32_t row_a, std::uint32_t row_b,
                  std::uint64_t count, double act_to_act_ns = -1.0);
  /// Single-row hammer loop: ACT/PRE one row `count` times. Encoded as a
  /// loop instruction with loop_row_b == row (the double-sided encoding
  /// forbids identical rows, so the degenerate case is unambiguous). The
  /// burst primitive of non-uniform pattern specs (harness/pattern_spec).
  Program& hammer_single(std::uint32_t bank, std::uint32_t row,
                         std::uint64_t count, double act_to_act_ns = -1.0);

 private:
  Program& push(Instruction inst, double default_delay_ns, double delay_ns);

  dram::Ddr4Timing timing_;
  std::vector<Instruction> instructions_;
  std::size_t read_count_ = 0;
};

}  // namespace vppstudy::softmc
