#include "softmc/counters.hpp"

#include <cinttypes>
#include <cstdio>

namespace vppstudy::softmc {

CommandCounts& CommandCounts::operator+=(const CommandCounts& other) noexcept {
  activates += other.activates;
  hammer_loops += other.hammer_loops;
  hammer_activations += other.hammer_activations;
  reads += other.reads;
  writes += other.writes;
  precharges += other.precharges;
  refreshes += other.refreshes;
  waits += other.waits;
  timing_violations += other.timing_violations;
  device_errors += other.device_errors;
  simulated_ns += other.simulated_ns;
  return *this;
}

std::string CommandCounts::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ACT=%" PRIu64 " hammerACT=%" PRIu64 " RD=%" PRIu64
                " WR=%" PRIu64 " PRE=%" PRIu64 " REF=%" PRIu64
                " viol=%" PRIu64 " err=%" PRIu64 " sim=%.3fms",
                activates, hammer_activations, reads, writes, precharges,
                refreshes, timing_violations, device_errors,
                simulated_ns / 1e6);
  return buf;
}

void SessionCounters::on_command(const Instruction& inst, double now_ns) {
  (void)now_ns;
  switch (inst.kind) {
    case dram::CommandKind::kActivate:
      if (inst.loop_count > 0) {
        ++counts_.hammer_loops;  // expanded ACTs arrive via on_hammer
      } else {
        ++counts_.activates;
      }
      break;
    case dram::CommandKind::kPrecharge:
    case dram::CommandKind::kPrechargeAll:
      ++counts_.precharges;
      break;
    case dram::CommandKind::kRead:
      ++counts_.reads;
      break;
    case dram::CommandKind::kWrite:
      ++counts_.writes;
      break;
    case dram::CommandKind::kRefresh:
      ++counts_.refreshes;
      break;
    case dram::CommandKind::kNop:
      ++counts_.waits;
      break;
  }
}

}  // namespace vppstudy::softmc
