#include "softmc/timing_checker.hpp"

namespace vppstudy::softmc {

TimingChecker::TimingChecker(dram::Ddr4Timing timing)
    : timing_(timing), banks_(dram::kBanksPerRank) {}

void TimingChecker::record(const std::string& rule, std::uint32_t bank,
                           double required, double actual, double at) {
  violations_.push_back({rule, bank, required, actual, at});
}

void TimingChecker::observe(dram::CommandKind kind, std::uint32_t bank,
                            double now_ns) {
  if (bank >= banks_.size()) return;
  BankTimes& bt = banks_[bank];
  switch (kind) {
    case dram::CommandKind::kActivate: {
      const double since_pre = now_ns - bt.last_pre;
      if (since_pre < timing_.t_rp_ns - 1e-9) {
        record("tRP", bank, timing_.t_rp_ns, since_pre, now_ns);
      }
      const double since_act = now_ns - bt.last_act;
      if (since_act < timing_.t_rc_ns - 1e-9) {
        record("tRC", bank, timing_.t_rc_ns, since_act, now_ns);
      }
      const double since_any = now_ns - last_act_any_bank_;
      if (since_any < timing_.t_rrd_s_ns - 1e-9) {
        record("tRRD", bank, timing_.t_rrd_s_ns, since_any, now_ns);
      }
      // tFAW: a fifth ACT within the rolling window of four.
      while (!recent_acts_.empty() &&
             now_ns - recent_acts_.front() > timing_.t_faw_ns) {
        recent_acts_.pop_front();
      }
      if (recent_acts_.size() >= 4) {
        record("tFAW", bank, timing_.t_faw_ns, now_ns - recent_acts_.front(),
               now_ns);
      }
      recent_acts_.push_back(now_ns);
      last_act_any_bank_ = now_ns;
      bt.last_act = now_ns;
      bt.open = true;
      break;
    }
    case dram::CommandKind::kPrecharge:
    case dram::CommandKind::kPrechargeAll: {
      if (bt.open) {
        const double open_for = now_ns - bt.last_act;
        if (open_for < timing_.t_ras_ns - 1e-9) {
          record("tRAS", bank, timing_.t_ras_ns, open_for, now_ns);
        }
      }
      bt.last_pre = now_ns;
      bt.open = false;
      break;
    }
    case dram::CommandKind::kRead:
    case dram::CommandKind::kWrite: {
      const double since_act = now_ns - bt.last_act;
      if (bt.open && since_act < timing_.t_rcd_ns - 1e-9) {
        record("tRCD", bank, timing_.t_rcd_ns, since_act, now_ns);
      }
      break;
    }
    case dram::CommandKind::kRefresh:
    case dram::CommandKind::kNop:
      break;
  }
}

void TimingChecker::observe_hammer(std::uint32_t bank, std::uint64_t count,
                                   double act_to_act_ns, double start_ns,
                                   double end_ns) {
  if (act_to_act_ns < timing_.t_rc_ns - 1e-9) {
    record("tRC(loop)", bank, timing_.t_rc_ns, act_to_act_ns, start_ns);
  }
  if (bank < banks_.size()) {
    banks_[bank].last_act = end_ns - act_to_act_ns;
    banks_[bank].last_pre = end_ns;
    banks_[bank].open = false;
  }
  last_act_any_bank_ = end_ns - act_to_act_ns;
  (void)count;
}

}  // namespace vppstudy::softmc
