// Observational DDR4 timing checker. SoftMC deliberately lets tests violate
// timing -- that is the methodology -- so the checker never blocks a command;
// it records which JEDEC rule a command would have broken, letting tests and
// benches distinguish intentional violations (reduced tRCD) from bugs.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "dram/timing.hpp"
#include "dram/types.hpp"

namespace vppstudy::softmc {

struct TimingViolation {
  std::string rule;       ///< e.g. "tRCD"
  std::uint32_t bank = 0;
  double required_ns = 0.0;
  double actual_ns = 0.0;
  double at_ns = 0.0;
};

class TimingChecker {
 public:
  explicit TimingChecker(dram::Ddr4Timing timing);

  /// Observe a command at `now_ns`; appends violations (if any).
  void observe(dram::CommandKind kind, std::uint32_t bank, double now_ns);
  /// Observe a bulk hammer loop (checked against tRC once).
  void observe_hammer(std::uint32_t bank, std::uint64_t count,
                      double act_to_act_ns, double start_ns, double end_ns);

  [[nodiscard]] const std::vector<TimingViolation>& violations() const noexcept {
    return violations_;
  }
  void clear_violations() { violations_.clear(); }

 private:
  struct BankTimes {
    double last_act = -1e18;
    double last_pre = -1e18;
    bool open = false;
  };

  void record(const std::string& rule, std::uint32_t bank, double required,
              double actual, double at);

  dram::Ddr4Timing timing_;
  std::vector<BankTimes> banks_;
  std::vector<TimingViolation> violations_;
  std::deque<double> recent_acts_;  ///< rank-level, for tFAW
  double last_act_any_bank_ = -1e18;
};

}  // namespace vppstudy::softmc
