// Observational DDR4 timing checker. SoftMC deliberately lets tests violate
// timing -- that is the methodology -- so the checker never blocks a command;
// it records which JEDEC rule a command would have broken, letting tests and
// benches distinguish intentional violations (reduced tRCD) from bugs. It is
// the first observer on the CommandDispatcher: it sees every command before
// the device acts on it.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "dram/timing.hpp"
#include "dram/types.hpp"
#include "softmc/observer.hpp"

namespace vppstudy::softmc {

class TimingChecker : public SessionObserver {
 public:
  explicit TimingChecker(dram::Ddr4Timing timing);

  /// Observe a command at `now_ns`; appends violations (if any).
  void observe(dram::CommandKind kind, std::uint32_t bank, double now_ns);
  /// Observe a bulk hammer loop (checked against tRC once).
  void observe_hammer(std::uint32_t bank, std::uint64_t count,
                      double act_to_act_ns, double start_ns, double end_ns);

  // --- SessionObserver -------------------------------------------------------
  /// Loop instructions are skipped here (their timing is checked when the
  /// loop retires, via on_hammer).
  void on_command(const Instruction& inst, double now_ns) override {
    if (inst.loop_count > 0) return;
    observe(inst.kind, inst.bank, now_ns);
  }
  void on_hammer(std::uint32_t bank, std::uint64_t count,
                 double act_to_act_ns, double start_ns,
                 double end_ns) override {
    observe_hammer(bank, count, act_to_act_ns, start_ns, end_ns);
  }

  [[nodiscard]] const std::vector<TimingViolation>& violations() const noexcept {
    return violations_;
  }
  void clear_violations() { violations_.clear(); }

  /// Forget all command history and recorded violations, returning the
  /// checker to its just-constructed state (Session::reset_for_job).
  void reset() {
    banks_.assign(banks_.size(), BankTimes{});
    violations_.clear();
    recent_acts_.clear();
    last_act_any_bank_ = -1e18;
  }

 private:
  struct BankTimes {
    double last_act = -1e18;
    double last_pre = -1e18;
    bool open = false;
  };

  void record(const std::string& rule, std::uint32_t bank, double required,
              double actual, double at);

  dram::Ddr4Timing timing_;
  std::vector<BankTimes> banks_;
  std::vector<TimingViolation> violations_;
  std::deque<double> recent_acts_;  ///< rank-level, for tFAW
  double last_act_any_bank_ = -1e18;
};

}  // namespace vppstudy::softmc
