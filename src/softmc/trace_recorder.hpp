// CommandTraceRecorder: a fixed-capacity ring buffer over the command
// stream. When a sweep fails (or vppctl is run with --trace), the last N
// commands tell you exactly what the host was doing to the device --
// the same post-mortem a SoftMC trace dump gives on real hardware. The ring
// overwrites oldest-first, so the memory cost is bounded no matter how long
// the hammer campaign ran.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/types.hpp"
#include "softmc/observer.hpp"

namespace vppstudy::softmc {

/// One recorded command issue.
struct TraceEntry {
  dram::CommandKind kind = dram::CommandKind::kNop;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
  std::uint64_t loop_count = 0;  ///< > 0 for hammer-loop instructions
  double at_ns = 0.0;

  /// e.g. "ACT b0 r1500 @123.0ns" / "HAMMER b0 r1499/r1501 x300000 @..."
  [[nodiscard]] std::string to_string() const;
};

class CommandTraceRecorder final : public SessionObserver {
 public:
  explicit CommandTraceRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 256;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Commands seen over the recorder's lifetime (>= entries().size()).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<TraceEntry> entries() const;
  void clear();

  // --- SessionObserver -------------------------------------------------------
  void on_command(const Instruction& inst, double now_ns) override;

 private:
  std::size_t capacity_;
  std::vector<TraceEntry> ring_;
  std::size_t next_ = 0;  ///< ring slot the next entry lands in
  std::uint64_t total_ = 0;
};

}  // namespace vppstudy::softmc
