// CommandTraceRecorder: a fixed-capacity ring buffer over the command
// stream. When a sweep fails (or vppctl is run with --trace), the last N
// commands tell you exactly what the host was doing to the device --
// the same post-mortem a SoftMC trace dump gives on real hardware. The ring
// overwrites oldest-first, so the memory cost is bounded no matter how long
// the hammer campaign ran.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dram/types.hpp"
#include "softmc/observer.hpp"

namespace vppstudy::softmc {

/// One recorded command issue. Carries everything needed to re-issue the
/// command verbatim (write payloads, hammer-loop spacing), so a serialized
/// ring (softmc/trace_dump) replays through a fresh session bit-exactly.
struct TraceEntry {
  dram::CommandKind kind = dram::CommandKind::kNop;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
  std::array<std::uint8_t, dram::kBytesPerColumn> write_data{};  ///< WR only
  std::uint64_t loop_count = 0;  ///< > 0 for hammer-loop instructions
  double loop_act_to_act_ns = 0.0;  ///< hammer loops: aggressor spacing
  double at_ns = 0.0;

  /// e.g. "ACT b0 r1500 @123.0ns" / "HAMMER b0 r1499/r1501 x300000 @..."
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

class CommandTraceRecorder final : public SessionObserver {
 public:
  explicit CommandTraceRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 256;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Commands seen over the recorder's lifetime (>= size()).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  /// Retained entries (== min(total_recorded, capacity)).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Retained entries, oldest first. Copies the whole ring -- prefer
  /// for_each() / last() on hot or large-capacity paths.
  [[nodiscard]] std::vector<TraceEntry> entries() const;
  /// Visit retained entries oldest-first without copying the ring.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    // Wrap-boundary invariant: once the ring is full, `next_` is both the
    // slot the next entry lands in and the index of the *oldest* retained
    // entry -- including the boundary case where the ring filled up exactly
    // (next_ == 0, chronological == storage order). Regression-tested in
    // tests/softmc/trace_ring_test.cpp.
    if (ring_.size() < capacity_) {
      for (const TraceEntry& e : ring_) fn(e);
      return;
    }
    for (std::size_t i = next_; i < ring_.size(); ++i) fn(ring_[i]);
    for (std::size_t i = 0; i < next_; ++i) fn(ring_[i]);
  }
  /// The most recent `n` entries, oldest first (copies only those n).
  [[nodiscard]] std::vector<TraceEntry> last(std::size_t n) const;
  void clear();

  // --- SessionObserver -------------------------------------------------------
  void on_command(const Instruction& inst, double now_ns) override;

 private:
  std::size_t capacity_;
  std::vector<TraceEntry> ring_;
  std::size_t next_ = 0;  ///< ring slot the next entry lands in
  std::uint64_t total_ = 0;
};

}  // namespace vppstudy::softmc
