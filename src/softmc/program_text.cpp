#include "softmc/program_text.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/units.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;

namespace {

double slots_to_ns(std::uint32_t slots) {
  return static_cast<double>(slots) * common::kCommandSlotNs;
}

std::string hex_word(
    const std::array<std::uint8_t, dram::kBytesPerColumn>& data) {
  char buf[2 * dram::kBytesPerColumn + 1];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf + 2 * i, 3, "%02x", data[i]);
  }
  return std::string(buf, 2 * dram::kBytesPerColumn);
}

common::Expected<std::array<std::uint8_t, dram::kBytesPerColumn>> parse_hex(
    const std::string& hex) {
  std::array<std::uint8_t, dram::kBytesPerColumn> out{};
  if (hex.size() != 2 * dram::kBytesPerColumn) {
    return Error{ErrorCode::kParseError, "WR data must be 16 hex digits"};
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned byte = 0;
    if (std::sscanf(hex.c_str() + 2 * i, "%2x", &byte) != 1) {
      return Error{ErrorCode::kParseError, "invalid hex in WR data"};
    }
    out[i] = static_cast<std::uint8_t>(byte);
  }
  return out;
}

}  // namespace

std::string program_to_text(const Program& program) {
  std::ostringstream os;
  os << "# SoftMC program (" << program.instructions().size()
     << " instructions)\n";
  for (const Instruction& i : program.instructions()) {
    switch (i.kind) {
      case dram::CommandKind::kActivate:
        if (i.loop_count > 0) {
          os << "HAMMER " << i.bank << ' ' << i.row << ' ' << i.loop_row_b
             << ' ' << i.loop_count << '\n';
        } else {
          os << "ACT " << i.bank << ' ' << i.row << " @"
             << slots_to_ns(i.slots_after_previous) << '\n';
        }
        break;
      case dram::CommandKind::kPrecharge:
        os << "PRE " << i.bank << " @" << slots_to_ns(i.slots_after_previous)
           << '\n';
        break;
      case dram::CommandKind::kPrechargeAll:
        os << "PREA @" << slots_to_ns(i.slots_after_previous) << '\n';
        break;
      case dram::CommandKind::kRead:
        os << "RD " << i.bank << ' ' << i.column << " @"
           << slots_to_ns(i.slots_after_previous) << '\n';
        break;
      case dram::CommandKind::kWrite:
        os << "WR " << i.bank << ' ' << i.column << ' '
           << hex_word(i.write_data) << " @"
           << slots_to_ns(i.slots_after_previous) << '\n';
        break;
      case dram::CommandKind::kRefresh:
        os << "REF @" << slots_to_ns(i.slots_after_previous) << '\n';
        break;
      case dram::CommandKind::kNop:
        os << "WAIT " << i.extra_wait_ns << '\n';
        break;
    }
  }
  return os.str();
}

common::Expected<Program> program_from_text(std::string_view text,
                                            const dram::Ddr4Timing& timing) {
  Program program(timing);
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;

    const auto fail = [&](const std::string& why) {
      return Error{ErrorCode::kParseError,
                   "line " + std::to_string(line_no) + ": " + why};
    };

    // Optional trailing "@<delay>" is picked off the token stream later.
    const auto read_delay = [&]() -> double {
      std::string tok;
      if (ls >> tok && tok.size() > 1 && tok[0] == '@') {
        return std::atof(tok.c_str() + 1);
      }
      return -1.0;
    };

    if (op == "ACT") {
      std::uint32_t bank = 0, row = 0;
      if (!(ls >> bank >> row)) return fail("ACT needs <bank> <row>");
      program.act(bank, row, read_delay());
    } else if (op == "PRE") {
      std::uint32_t bank = 0;
      if (!(ls >> bank)) return fail("PRE needs <bank>");
      program.pre(bank, read_delay());
    } else if (op == "RD") {
      std::uint32_t bank = 0, col = 0;
      if (!(ls >> bank >> col)) return fail("RD needs <bank> <col>");
      program.rd(bank, col, read_delay());
    } else if (op == "WR") {
      std::uint32_t bank = 0, col = 0;
      std::string hex;
      if (!(ls >> bank >> col >> hex)) {
        return fail("WR needs <bank> <col> <hex16>");
      }
      auto data = parse_hex(hex);
      if (!data) {
        return std::move(data).error().with_context(
            "line " + std::to_string(line_no));
      }
      program.wr(bank, col, *data, read_delay());
    } else if (op == "REF") {
      program.ref(read_delay());
    } else if (op == "WAIT") {
      double ns = 0.0;
      if (!(ls >> ns)) return fail("WAIT needs <ns>");
      program.wait_ns(ns);
    } else if (op == "HAMMER") {
      std::uint32_t bank = 0, a = 0, b = 0;
      std::uint64_t count = 0;
      if (!(ls >> bank >> a >> b >> count)) {
        return fail("HAMMER needs <bank> <rowA> <rowB> <count>");
      }
      program.hammer(bank, a, b, count);
    } else {
      return fail("unknown opcode '" + op + "'");
    }
  }
  return program;
}

}  // namespace vppstudy::softmc
