// CommandDispatcher: the per-instruction dispatch loop extracted from
// Session::execute. It owns nothing but references -- the device under test
// and the observer list -- and is deliberately dumb: it advances the command
// clock, issues each instruction to the module, and notifies observers. The
// timing checker is the first observer, so every command is timing-checked
// before the device acts on it, exactly as in the pre-refactor monolith; the
// dispatcher must not change command ordering or clock arithmetic (sweep
// output is bit-identical by construction).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "dram/module.hpp"
#include "softmc/observer.hpp"
#include "softmc/program.hpp"

namespace vppstudy::softmc {

/// Result of executing a Program.
struct ExecutionResult {
  std::vector<std::array<std::uint8_t, dram::kBytesPerColumn>> reads;
  std::size_t timing_violations = 0;
  common::Status status;  ///< first device error aborts execution
};

class CommandDispatcher {
 public:
  /// `violation_log` is the checker's violation vector; the dispatcher
  /// watches it for growth so new violations fan out to observers.
  CommandDispatcher(dram::Module& module,
                    const std::vector<TimingViolation>& violation_log);

  /// Observers are notified in registration order. The timing checker must
  /// be registered first (Session does this) so it sees commands before any
  /// derived metric does. Observers are borrowed, never owned.
  void add_observer(SessionObserver* observer);
  void remove_observer(SessionObserver* observer);

  /// Install (or clear, with nullptr) the active command interceptor. At
  /// most one is consulted; it is borrowed, never owned. With none
  /// installed the dispatch loop is byte-identical to the pre-interceptor
  /// code path (no per-instruction copy).
  void set_interceptor(CommandInterceptor* interceptor) noexcept {
    interceptor_ = interceptor;
  }
  [[nodiscard]] const CommandInterceptor* interceptor() const noexcept {
    return interceptor_;
  }

  /// Execute `program` against the module, advancing `clock_ns` in place.
  [[nodiscard]] ExecutionResult execute(const Program& program,
                                        double& clock_ns);

 private:
  void advance(double& clock_ns, double ns);
  void notify_command(const Instruction& inst, double now_ns);
  /// Fan out violations appended to the log since `watermark`.
  void notify_new_violations(std::size_t watermark);
  /// Issue one instruction to the device (observers notified first). On a
  /// device rejection fills `result.status`, fans out on_error, and returns
  /// false to abort the program.
  bool issue_one(const Instruction& inst, ExecutionResult& result,
                 double& clock_ns);

  dram::Module& module_;
  const std::vector<TimingViolation>& violation_log_;
  std::vector<SessionObserver*> observers_;
  CommandInterceptor* interceptor_ = nullptr;
};

}  // namespace vppstudy::softmc
