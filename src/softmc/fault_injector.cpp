#include "softmc/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDropAct: return "drop_act";
    case FaultKind::kDuplicateAct: return "dup_act";
    case FaultKind::kDropRead: return "drop_read";
    case FaultKind::kFlipReadBits: return "flip_read";
    case FaultKind::kDelayPre: return "delay_pre";
    case FaultKind::kSpuriousError: return "spurious";
  }
  return "?";
}

common::ErrorCode expected_error_code(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDropAct: return ErrorCode::kDeviceProtocol;
    case FaultKind::kDuplicateAct: return ErrorCode::kDeviceProtocol;
    case FaultKind::kDropRead: return ErrorCode::kReadUnderrun;
    case FaultKind::kFlipReadBits: return ErrorCode::kUnknown;  // silent
    case FaultKind::kDelayPre: return ErrorCode::kUnknown;      // silent
    case FaultKind::kSpuriousError: return ErrorCode::kModuleUnresponsive;
  }
  return ErrorCode::kUnknown;
}

namespace {

[[nodiscard]] bool kind_from_name(std::string_view name, FaultKind& out) {
  constexpr FaultKind kAll[] = {
      FaultKind::kDropAct,      FaultKind::kDuplicateAct,
      FaultKind::kDropRead,     FaultKind::kFlipReadBits,
      FaultKind::kDelayPre,     FaultKind::kSpuriousError,
  };
  for (const FaultKind k : kAll) {
    if (fault_kind_name(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] Error spec_error(std::string what) {
  return Error{ErrorCode::kParseError,
               "fault plan: " + std::move(what)};
}

}  // namespace

common::Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string_view clause = trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (clause.empty()) continue;

    // First comma-token names the rule ("seed=N", "<kind>=p", "<kind>@i"),
    // the rest are key=value options.
    std::size_t cpos = 0;
    bool first = true;
    FaultRule rule;
    bool have_rule = false;
    while (cpos <= clause.size()) {
      const std::size_t cend = std::min(clause.find(',', cpos), clause.size());
      const std::string_view token = trim(clause.substr(cpos, cend - cpos));
      cpos = cend + 1;
      if (token.empty()) continue;

      if (first) {
        first = false;
        const std::size_t eq = token.find('=');
        const std::size_t at = token.find('@');
        if (eq != std::string_view::npos && token.substr(0, eq) == "seed") {
          plan.seed = std::strtoull(std::string(token.substr(eq + 1)).c_str(),
                                    nullptr, 10);
          continue;
        }
        const std::size_t sep = std::min(eq, at);
        if (sep == std::string_view::npos) {
          return spec_error("clause '" + std::string(clause) +
                            "' needs '<kind>=<prob>' or '<kind>@<index>'");
        }
        if (!kind_from_name(token.substr(0, sep), rule.kind)) {
          return spec_error("unknown fault kind '" +
                            std::string(token.substr(0, sep)) + "'");
        }
        const std::string arg(token.substr(sep + 1));
        if (sep == at) {
          rule.at_command = std::strtoull(arg.c_str(), nullptr, 10);
        } else {
          rule.probability = std::atof(arg.c_str());
          if (rule.probability < 0.0 || rule.probability > 1.0 ||
              !std::isfinite(rule.probability)) {
            return spec_error("probability '" + arg + "' not in [0, 1]");
          }
        }
        have_rule = true;
        continue;
      }

      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || !have_rule) {
        return spec_error("malformed option '" + std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string val(token.substr(eq + 1));
      if (key == "bits") {
        rule.bits = static_cast<std::uint32_t>(
            std::strtoul(val.c_str(), nullptr, 10));
        if (rule.bits == 0 || rule.bits > 64) {
          return spec_error("bits must be in [1, 64]");
        }
      } else if (key == "ns") {
        rule.delay_ns = std::atof(val.c_str());
        if (!(rule.delay_ns > 0.0)) {
          return spec_error("ns must be positive");
        }
      } else if (key == "code") {
        rule.code = common::error_code_from_name(val);
        if (rule.code == ErrorCode::kUnknown && val != "kUnknown") {
          return spec_error("unknown error code '" + val + "'");
        }
      } else {
        return spec_error("unknown option '" + std::string(key) + "'");
      }
    }
    if (have_rule) plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    out += ';';
    out += fault_kind_name(rule.kind);
    if (rule.at_command != FaultRule::kNoSchedule) {
      out += '@' + std::to_string(rule.at_command);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "=%g", rule.probability);
      out += buf;
    }
    if (rule.kind == FaultKind::kFlipReadBits && rule.bits != 1) {
      out += ",bits=" + std::to_string(rule.bits);
    }
    if (rule.kind == FaultKind::kDelayPre) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",ns=%g", rule.delay_ns);
      out += buf;
    }
    if (rule.kind == FaultKind::kSpuriousError) {
      out += ",code=";
      out += common::error_code_name(rule.code);
    }
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void FaultInjector::set_attempt(std::uint32_t attempt) noexcept {
  attempt_ = attempt;
  commands_seen_ = 0;
  pending_trp_debt_ns_ = 0.0;
  pending_trp_bank_ = 0;
  counts_ = InjectionCounts{};
  log_.clear();
}

bool FaultInjector::fires(const FaultRule& rule, std::uint64_t index,
                          std::uint64_t salt) const noexcept {
  if (rule.at_command != FaultRule::kNoSchedule) {
    return index == rule.at_command;
  }
  if (rule.probability <= 0.0) return false;
  return common::uniform_at({plan_.seed, attempt_,
                             static_cast<std::uint64_t>(rule.kind), index,
                             salt}) < rule.probability;
}

void FaultInjector::record(FaultKind kind, std::uint64_t index, double at_ns) {
  log_.push_back(InjectionEvent{kind, index, at_ns});
}

CommandInterceptor::Decision FaultInjector::intercept(Instruction& inst,
                                                      double now_ns) {
  const std::uint64_t index = commands_seen_++;
  constexpr std::uint32_t kAnyBank = ~0U;

  // Reclaim a delayed PRE's tRP debt: the rest of the program does not know
  // the PRE went out late, so the next ACT on that bank keeps its original
  // absolute schedule -- which shortens the observed PRE-to-ACT gap and
  // trips the TimingChecker's tRP rule.
  const bool plain_act =
      inst.kind == dram::CommandKind::kActivate && inst.loop_count == 0;
  if (pending_trp_debt_ns_ > 0.0 && inst.kind == dram::CommandKind::kActivate &&
      (pending_trp_bank_ == kAnyBank || inst.bank == pending_trp_bank_)) {
    const double gap =
        inst.slots_after_previous * common::kCommandSlotNs + inst.extra_wait_ns;
    inst.slots_after_previous = 0;
    inst.extra_wait_ns = std::max(0.0, gap - pending_trp_debt_ns_);
    pending_trp_debt_ns_ = 0.0;
  }

  for (const FaultRule& rule : plan_.rules) {
    switch (rule.kind) {
      case FaultKind::kDropAct:
        if (plain_act && fires(rule, index, 0)) {
          ++counts_.dropped_acts;
          record(rule.kind, index, now_ns);
          return Decision{Action::kDrop, {}};
        }
        break;
      case FaultKind::kDuplicateAct:
        if (plain_act && fires(rule, index, 0)) {
          ++counts_.duplicated_acts;
          record(rule.kind, index, now_ns);
          return Decision{Action::kDuplicate, {}};
        }
        break;
      case FaultKind::kDropRead:
        if (inst.kind == dram::CommandKind::kRead && fires(rule, index, 0)) {
          ++counts_.dropped_reads;
          record(rule.kind, index, now_ns);
          return Decision{Action::kDrop, {}};
        }
        break;
      case FaultKind::kFlipReadBits:
        break;  // handled in corrupt_read()
      case FaultKind::kDelayPre:
        if ((inst.kind == dram::CommandKind::kPrecharge ||
             inst.kind == dram::CommandKind::kPrechargeAll) &&
            fires(rule, index, 0)) {
          inst.extra_wait_ns += rule.delay_ns;
          pending_trp_debt_ns_ = rule.delay_ns;
          pending_trp_bank_ = inst.kind == dram::CommandKind::kPrechargeAll
                                  ? kAnyBank
                                  : inst.bank;
          ++counts_.delayed_pres;
          record(rule.kind, index, now_ns);
        }
        break;
      case FaultKind::kSpuriousError:
        if (fires(rule, index, 0)) {
          ++counts_.spurious_errors;
          record(rule.kind, index, now_ns);
          return Decision{
              Action::kFail,
              Error{rule.code,
                    "injected spurious fault at command " +
                        std::to_string(index) + " (seed " +
                        std::to_string(plan_.seed) + ", attempt " +
                        std::to_string(attempt_) + ")"}};
        }
        break;
    }
  }
  return Decision{};
}

void FaultInjector::corrupt_read(
    std::uint32_t bank, std::uint32_t column,
    std::array<std::uint8_t, dram::kBytesPerColumn>& data, double now_ns) {
  (void)bank;
  (void)column;
  // The read's own command index (intercept() for it already ran).
  const std::uint64_t index = commands_seen_ == 0 ? 0 : commands_seen_ - 1;
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != FaultKind::kFlipReadBits) continue;
    if (!fires(rule, index, 0)) continue;
    // Flip `bits` distinct bit positions of the 64-bit burst, positions
    // drawn from the same deterministic key family as the decision itself.
    std::uint64_t flipped_mask = 0;
    std::uint64_t salt = 1;
    std::uint32_t placed = 0;
    while (placed < rule.bits && salt < 64U * 8U) {
      const std::uint64_t bit =
          common::hash_key({plan_.seed, attempt_,
                            static_cast<std::uint64_t>(rule.kind), index,
                            salt++}) %
          64;
      if ((flipped_mask >> bit) & 1ULL) continue;
      flipped_mask |= 1ULL << bit;
      ++placed;
    }
    for (std::uint32_t byte = 0; byte < dram::kBytesPerColumn; ++byte) {
      data[byte] ^= static_cast<std::uint8_t>((flipped_mask >> (byte * 8)) &
                                              0xffULL);
    }
    ++counts_.corrupted_reads;
    counts_.flipped_bits += placed;
    record(rule.kind, index, now_ns);
  }
}

}  // namespace vppstudy::softmc
