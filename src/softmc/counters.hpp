// SessionCounters: an always-on observer that tallies the command stream a
// session issues -- ACTs, reads, writes, REFs, hammer activations, timing
// violations, device errors, and simulated nanoseconds. The counts are plain
// integer sums, so per-job counters aggregate deterministically into
// per-sweep instrumentation summaries regardless of scheduling
// (core::parallel_study attaches them to sweep results).
#pragma once

#include <cstdint>
#include <string>

#include "softmc/observer.hpp"

namespace vppstudy::softmc {

/// POD tally of a command stream. operator+= makes aggregation across jobs
/// a fold; every field is order-independent.
struct CommandCounts {
  std::uint64_t activates = 0;          ///< explicit ACT commands
  std::uint64_t hammer_loops = 0;       ///< LOOP-style hammer instructions
  std::uint64_t hammer_activations = 0; ///< ACTs issued inside hammer loops
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t precharges = 0;         ///< PRE and PREA
  std::uint64_t refreshes = 0;
  std::uint64_t waits = 0;              ///< NOP / idle-wait instructions
  std::uint64_t timing_violations = 0;
  std::uint64_t device_errors = 0;
  double simulated_ns = 0.0;            ///< total command-clock advance

  /// Every command issued, with hammer loops expanded to their ACTs.
  [[nodiscard]] std::uint64_t total_commands() const noexcept {
    return activates + hammer_activations + reads + writes + precharges +
           refreshes + waits;
  }

  CommandCounts& operator+=(const CommandCounts& other) noexcept;
  friend bool operator==(const CommandCounts&, const CommandCounts&) = default;

  /// One-line rendering for benches and vppctl --counters.
  [[nodiscard]] std::string summary() const;
};

class SessionCounters final : public SessionObserver {
 public:
  [[nodiscard]] const CommandCounts& counts() const noexcept { return counts_; }
  void reset() noexcept { counts_ = CommandCounts{}; }

  // --- SessionObserver -------------------------------------------------------
  void on_clock_advance(double from_ns, double to_ns) override {
    counts_.simulated_ns += to_ns - from_ns;
  }
  void on_command(const Instruction& inst, double now_ns) override;
  void on_hammer(std::uint32_t bank, std::uint64_t count, double act_to_act_ns,
                 double start_ns, double end_ns) override {
    (void)bank;
    (void)act_to_act_ns;
    (void)start_ns;
    (void)end_ns;
    // Two aggressor rows, `count` activations each.
    counts_.hammer_activations += 2 * count;
  }
  void on_hammer_single(std::uint32_t bank, std::uint64_t count,
                        double act_to_act_ns, double start_ns,
                        double end_ns) override {
    (void)bank;
    (void)act_to_act_ns;
    (void)start_ns;
    (void)end_ns;
    // One aggressor row -- on_hammer's 2x would overcount.
    counts_.hammer_activations += count;
  }
  void on_violation(const TimingViolation& violation) override {
    (void)violation;
    ++counts_.timing_violations;
  }
  void on_error(const common::Error& error, double now_ns) override {
    (void)error;
    (void)now_ns;
    ++counts_.device_errors;
  }

 private:
  CommandCounts counts_;
};

}  // namespace vppstudy::softmc
