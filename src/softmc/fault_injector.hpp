// FaultInjector: a deterministic, seeded SessionObserver + CommandInterceptor
// that perturbs the command stream and returned data in flight, modeling the
// misbehaving silicon the paper's host software had to survive at reduced
// VPP (section 4.1): activations that never latch, corrupted read bursts,
// late precharges that violate tRP at the next ACT, and modules that go
// silent mid-program. Every decision is a pure function of
// (plan seed, attempt salt, command index, fault kind), so the same plan
// injects the same faults in the same places on every run -- which is what
// makes the replay-fuzz CI gauntlet and the harness retry policy testable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/expected.hpp"
#include "softmc/observer.hpp"

namespace vppstudy::softmc {

/// The fault taxonomy. Documented error-path mapping (asserted in
/// tests/softmc/fault_injector_test.cpp and docs/MODEL.md):
///   kDropAct      -> kDeviceProtocol   (a later RD/WR hits a closed row)
///   kDuplicateAct -> kDeviceProtocol   (second ACT lands on an open bank)
///   kDropRead     -> kReadUnderrun     (row readout returns fewer bursts)
///   kFlipReadBits -> no typed error: silent data corruption, surfaces as
///                    bit flips in whatever experiment verifies the row
///   kDelayPre     -> no typed error: the late PRE shortens the gap to the
///                    next ACT, tripping the TimingChecker's tRP rule
///   kSpuriousError-> the rule's configured ErrorCode, surfaced mid-program
///                    as if the device had rejected the command
enum class FaultKind : std::uint8_t {
  kDropAct,
  kDuplicateAct,
  kDropRead,
  kFlipReadBits,
  kDelayPre,
  kSpuriousError,
};

/// Stable spec/JSON name, e.g. "drop_act".
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind) noexcept;

/// The typed error a fault of this kind is documented to provoke;
/// kUnknown for the silent kinds (kFlipReadBits, kDelayPre).
[[nodiscard]] common::ErrorCode expected_error_code(FaultKind kind) noexcept;

/// One injection rule: probability-based (`probability` per eligible
/// command) or schedule-based (`at_command` pins the fault to one exact
/// host-command index). A rule with probability 0 and no schedule is inert.
struct FaultRule {
  /// Sentinel: no scheduled command index.
  static constexpr std::uint64_t kNoSchedule = ~0ULL;

  FaultKind kind = FaultKind::kDropAct;
  double probability = 0.0;
  std::uint64_t at_command = kNoSchedule;
  std::uint32_t bits = 1;      ///< kFlipReadBits: bits flipped per burst
  double delay_ns = 10.0;      ///< kDelayPre: how late the PRE lands
  common::ErrorCode code = common::ErrorCode::kModuleUnresponsive;  ///< kSpuriousError

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// A seeded set of fault rules.
///
/// Spec grammar (semicolon-separated clauses):
///   seed=<N>
///   <kind>=<probability>[,bits=<n>][,ns=<delay>][,code=<kErrorCode>]
///   <kind>@<command-index>[,bits=<n>][,ns=<delay>][,code=<kErrorCode>]
/// with <kind> one of drop_act, dup_act, drop_read, flip_read, delay_pre,
/// spurious. Example:
///   "seed=42;drop_act=0.001;flip_read=0.0005,bits=2;spurious@5000,code=kModuleUnresponsive"
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
  [[nodiscard]] static common::Result<FaultPlan> parse(std::string_view spec);
  /// Canonical spec string (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

class FaultInjector final : public SessionObserver, public CommandInterceptor {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Per-kind injection tallies.
  struct InjectionCounts {
    std::uint64_t dropped_acts = 0;
    std::uint64_t duplicated_acts = 0;
    std::uint64_t dropped_reads = 0;
    std::uint64_t corrupted_reads = 0;
    std::uint64_t flipped_bits = 0;
    std::uint64_t delayed_pres = 0;
    std::uint64_t spurious_errors = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
      return dropped_acts + duplicated_acts + dropped_reads +
             corrupted_reads + delayed_pres + spurious_errors;
    }
    friend bool operator==(const InjectionCounts&,
                           const InjectionCounts&) = default;
  };

  /// One injected fault, for post-mortems and determinism assertions.
  struct InjectionEvent {
    FaultKind kind = FaultKind::kDropAct;
    std::uint64_t command_index = 0;
    double at_ns = 0.0;

    friend bool operator==(const InjectionEvent&,
                           const InjectionEvent&) = default;
  };

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const InjectionCounts& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] const std::vector<InjectionEvent>& log() const noexcept {
    return log_;
  }
  /// Host commands intercepted so far (the command-index domain of
  /// schedule-based rules).
  [[nodiscard]] std::uint64_t commands_seen() const noexcept {
    return commands_seen_;
  }

  /// Re-salt the injection draws for a retry attempt: the same plan under a
  /// different attempt perturbs *different* commands, so a bounded-retry
  /// policy can make progress against probabilistic faults while staying
  /// fully deterministic. Resets counters, log, and command index.
  void set_attempt(std::uint32_t attempt) noexcept;
  [[nodiscard]] std::uint32_t attempt() const noexcept { return attempt_; }

  // --- CommandInterceptor ----------------------------------------------------
  Decision intercept(Instruction& inst, double now_ns) override;
  void corrupt_read(std::uint32_t bank, std::uint32_t column,
                    std::array<std::uint8_t, dram::kBytesPerColumn>& data,
                    double now_ns) override;

 private:
  [[nodiscard]] bool fires(const FaultRule& rule, std::uint64_t index,
                           std::uint64_t salt) const noexcept;
  void record(FaultKind kind, std::uint64_t index, double at_ns);

  FaultPlan plan_;
  std::uint32_t attempt_ = 0;
  std::uint64_t commands_seen_ = 0;
  /// tRP debt from a delayed PRE, reclaimed at the next ACT on that bank.
  double pending_trp_debt_ns_ = 0.0;
  std::uint32_t pending_trp_bank_ = 0;
  InjectionCounts counts_;
  std::vector<InjectionEvent> log_;
};

}  // namespace vppstudy::softmc
