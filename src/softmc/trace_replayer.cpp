#include "softmc/trace_replayer.hpp"

#include <utility>

#include "softmc/session.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;

common::Result<ReplayReport> TraceReplayer::replay(Session& session) {
  ReplayReport report;
  report.original_failed = dump_.has_failure();
  report.original_code = dump_.error_code;
  report.truncated = dump_.truncated();

  session.reset_counters();
  session.clear_violations();

  for (std::size_t i = 0; i < dump_.entries.size(); ++i) {
    const TraceEntry& entry = dump_.entries[i];
    const double wait_ns = entry.at_ns - session.clock_ns();
    if (wait_ns < -1e-6) {
      return Error{ErrorCode::kParseError,
                   "trace dump entry " + std::to_string(i) + " at " +
                       std::to_string(entry.at_ns) +
                       "ns precedes the replay clock (" +
                       std::to_string(session.clock_ns()) + "ns)"};
    }

    // One instruction per entry, scheduled by absolute timestamp: zero
    // slots plus an exact extra wait lands the command at entry.at_ns,
    // which slots_for()'s 1.5ns round-up could not guarantee.
    Instruction inst;
    inst.kind = entry.kind;
    inst.bank = entry.bank;
    inst.row = entry.row;
    inst.slots_after_previous = 0;
    inst.extra_wait_ns = wait_ns > 0.0 ? wait_ns : 0.0;
    if (entry.loop_count > 0) {
      // Hammer entries store the partner row in `column` (trace_recorder).
      inst.loop_count = entry.loop_count;
      inst.loop_row_b = entry.column;
      inst.loop_act_to_act_ns = entry.loop_act_to_act_ns;
    } else {
      inst.column = entry.column;
    }
    if (entry.kind == dram::CommandKind::kWrite) {
      inst.write_data = entry.write_data;
    }

    Program step(session.timing());
    step.push_raw(inst);
    const ExecutionResult r = session.execute(step);
    if (!r.status.ok()) {
      report.replay_failed = true;
      report.replay_code = r.status.error().code;
      report.replay_message = r.status.error().to_string();
      break;
    }
    ++report.commands_replayed;
  }

  report.counters = session.counters();
  report.stats = session.module().stats();
  report.timing_violations = session.violations().size();
  return report;
}

common::Result<ReplayReport> TraceReplayer::replay_on_profile(
    const dram::ModuleProfile& profile) {
  Session session(profile);
  session.set_noise_stream(dump_.noise_stream);
  VPP_RETURN_IF_ERROR(session.set_temperature(dump_.temperature_c));

  if (auto st = session.set_vpp(dump_.vpp_v); !st.ok()) {
    // The original run may have died exactly here (VPP below the module's
    // VPPmin): that IS the reproduction, with zero commands issued.
    ReplayReport report;
    report.original_failed = dump_.has_failure();
    report.original_code = dump_.error_code;
    report.truncated = dump_.truncated();
    report.replay_failed = true;
    report.replay_code = st.error().code;
    report.replay_message = st.error().to_string();
    if (report.original_failed && report.replay_code == report.original_code) {
      return report;
    }
    return std::move(st).error().with_context("trace replay rig setup");
  }
  return replay(session);
}

}  // namespace vppstudy::softmc
