// Thermal chamber model: heater pads on both sides of the DIMM driven by a
// PID temperature controller (MaxWell FT200, +/-0.1C; section 4.1). A
// first-order thermal plant plus a discrete PID loop reproduces the settle-
// then-hold behavior the real rig shows.
#pragma once

namespace vppstudy::softmc {

/// Discrete PID controller (parallel form with anti-windup clamping).
class PidController {
 public:
  struct Gains {
    double kp = 8.0;
    double ki = 0.8;
    double kd = 2.0;
    double output_min = 0.0;   ///< heater power [W]
    double output_max = 60.0;
  };

  explicit PidController(Gains gains);

  /// One control step; returns the actuator command.
  double step(double setpoint, double measurement, double dt_s);
  void reset();

 private:
  Gains gains_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
};

/// First-order thermal plant: heater power raises plate temperature against
/// ambient losses.
class ThermalPlant {
 public:
  struct Params {
    double ambient_c = 25.0;
    double thermal_resistance_c_per_w = 1.2;
    double time_constant_s = 40.0;
  };

  explicit ThermalPlant(Params params);

  void step(double heater_w, double dt_s);
  [[nodiscard]] double temperature_c() const noexcept { return temp_c_; }
  void set_temperature(double c) noexcept { temp_c_ = c; }

 private:
  Params params_;
  double temp_c_;
};

/// The full chamber: PID + plant. `settle` runs the loop until the plate
/// holds the setpoint within the controller's precision.
class ThermalChamber {
 public:
  ThermalChamber();

  struct SettleResult {
    double temperature_c = 0.0;
    double elapsed_s = 0.0;
    bool converged = false;
  };
  /// Drive toward `setpoint_c`; declares convergence after the temperature
  /// stays within +/-0.1C (the FT200's precision) for 30 consecutive seconds.
  SettleResult settle(double setpoint_c, double max_seconds = 3600.0);

  [[nodiscard]] double temperature_c() const noexcept {
    return plant_.temperature_c();
  }

 private:
  PidController pid_;
  ThermalPlant plant_;
};

}  // namespace vppstudy::softmc
