#include "softmc/trace_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace vppstudy::softmc {

std::string TraceEntry::to_string() const {
  char buf[128];
  if (loop_count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "HAMMER b%u r%u/r%u x%" PRIu64 " @%.1fns", bank, row, column,
                  loop_count, at_ns);
    return buf;
  }
  switch (kind) {
    case dram::CommandKind::kActivate:
      std::snprintf(buf, sizeof(buf), "ACT b%u r%u @%.1fns", bank, row, at_ns);
      break;
    case dram::CommandKind::kRead:
      std::snprintf(buf, sizeof(buf), "RD b%u c%u @%.1fns", bank, column,
                    at_ns);
      break;
    case dram::CommandKind::kWrite:
      std::snprintf(buf, sizeof(buf), "WR b%u c%u @%.1fns", bank, column,
                    at_ns);
      break;
    case dram::CommandKind::kPrecharge:
    case dram::CommandKind::kPrechargeAll:
      std::snprintf(buf, sizeof(buf), "%s b%u @%.1fns",
                    dram::command_name(kind), bank, at_ns);
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s @%.1fns", dram::command_name(kind),
                    at_ns);
      break;
  }
  return buf;
}

CommandTraceRecorder::CommandTraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

std::vector<TraceEntry> CommandTraceRecorder::entries() const {
  std::vector<TraceEntry> out;
  out.reserve(ring_.size());
  for_each([&out](const TraceEntry& e) { out.push_back(e); });
  return out;
}

std::vector<TraceEntry> CommandTraceRecorder::last(std::size_t n) const {
  n = std::min(n, ring_.size());
  std::vector<TraceEntry> out;
  out.reserve(n);
  std::size_t skip = ring_.size() - n;
  for_each([&out, &skip](const TraceEntry& e) {
    if (skip > 0) {
      --skip;
      return;
    }
    out.push_back(e);
  });
  return out;
}

void CommandTraceRecorder::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void CommandTraceRecorder::on_command(const Instruction& inst, double now_ns) {
  TraceEntry entry;
  entry.kind = inst.kind;
  entry.bank = inst.bank;
  entry.row = inst.row;
  // Hammer loops reuse `column` for the partner row in the rendered trace.
  entry.column = inst.loop_count > 0 ? inst.loop_row_b : inst.column;
  if (inst.kind == dram::CommandKind::kWrite) entry.write_data = inst.write_data;
  entry.loop_count = inst.loop_count;
  entry.loop_act_to_act_ns = inst.loop_count > 0 ? inst.loop_act_to_act_ns : 0.0;
  entry.at_ns = now_ns;
  if (ring_.size() < capacity_) {
    ring_.push_back(entry);
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = entry;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

}  // namespace vppstudy::softmc
