#include "softmc/session.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::Status;

Session::Session(dram::ModuleProfile profile)
    : module_(std::move(profile)),
      timing_(dram::timing_for_speed_grade(module_.profile().frequency_mts)),
      rail_(common::kNominalVppV),
      checker_(timing_) {
  module_.set_vpp(rail_.voltage());
  module_.set_temperature(chamber_.temperature_c());
}

Status Session::set_vpp(double vpp_v) {
  auto applied = rail_.set_voltage(vpp_v);
  if (!applied) return Error{applied.error().message};
  module_.set_vpp(*applied);
  if (!module_.responsive()) {
    return Error{"module " + module_.profile().name +
                 " stopped communicating at VPP=" + std::to_string(*applied) +
                 "V (below VPPmin)"};
  }
  return Status::ok_status();
}

Status Session::set_temperature(double temp_c) {
  const auto settle = chamber_.settle(temp_c);
  module_.set_temperature(settle.temperature_c);
  if (!settle.converged) {
    return Error{"thermal chamber failed to settle at " +
                 std::to_string(temp_c) + "C"};
  }
  return Status::ok_status();
}

ExecutionResult Session::execute(const Program& program) {
  ExecutionResult result;
  const std::size_t violations_before = checker_.violations().size();
  for (const Instruction& inst : program.instructions()) {
    advance(inst.slots_after_previous * common::kCommandSlotNs);
    if (inst.extra_wait_ns > 0.0) advance(inst.extra_wait_ns);

    Status st;
    switch (inst.kind) {
      case dram::CommandKind::kActivate:
        if (inst.loop_count > 0) {
          const double start = clock_ns_;
          double now = clock_ns_;
          st = module_.hammer_pair(inst.bank, inst.row, inst.loop_row_b,
                                   inst.loop_count, inst.loop_act_to_act_ns,
                                   now);
          checker_.observe_hammer(inst.bank, inst.loop_count,
                                  inst.loop_act_to_act_ns, start, now);
          clock_ns_ = now;
        } else {
          checker_.observe(inst.kind, inst.bank, clock_ns_);
          st = module_.activate(inst.bank, inst.row, clock_ns_);
        }
        break;
      case dram::CommandKind::kPrecharge:
        checker_.observe(inst.kind, inst.bank, clock_ns_);
        st = module_.precharge(inst.bank, clock_ns_);
        break;
      case dram::CommandKind::kPrechargeAll:
        checker_.observe(inst.kind, inst.bank, clock_ns_);
        st = module_.precharge_all(clock_ns_);
        break;
      case dram::CommandKind::kRead: {
        checker_.observe(inst.kind, inst.bank, clock_ns_);
        auto data = module_.read(inst.bank, inst.column, clock_ns_);
        if (!data) {
          st = Error{data.error().message};
        } else {
          result.reads.push_back(*data);
        }
        break;
      }
      case dram::CommandKind::kWrite:
        checker_.observe(inst.kind, inst.bank, clock_ns_);
        st = module_.write(inst.bank, inst.column, inst.write_data, clock_ns_);
        break;
      case dram::CommandKind::kRefresh:
        checker_.observe(inst.kind, inst.bank, clock_ns_);
        st = module_.refresh(clock_ns_);
        break;
      case dram::CommandKind::kNop:
        break;
    }
    if (!st.ok()) {
      result.status = st;
      break;
    }
  }
  result.timing_violations = checker_.violations().size() - violations_before;
  return result;
}

Status Session::init_row(std::uint32_t bank, std::uint32_t row,
                         const std::vector<std::uint8_t>& image) {
  if (image.size() != dram::kBytesPerRow) {
    return Error{"row image must be exactly one row (8192 bytes)"};
  }
  Program p(timing_);
  p.act(bank, row);
  // Burst writes back-to-back at 4-clock column spacing.
  const double col_spacing = 4.0 * timing_.t_ck_ns;
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    std::array<std::uint8_t, dram::kBytesPerColumn> word{};
    std::copy_n(image.begin() + c * dram::kBytesPerColumn,
                dram::kBytesPerColumn, word.begin());
    p.wr(bank, c, word, c == 0 ? timing_.t_rcd_ns : col_spacing);
  }
  p.pre(bank, timing_.t_wr_ns + col_spacing);
  auto r = execute(p);
  return r.status;
}

common::Expected<std::vector<std::uint8_t>> Session::read_row(
    std::uint32_t bank, std::uint32_t row, double trcd_ns) {
  Program p(timing_);
  p.act(bank, row);
  const double first_delay = trcd_ns > 0.0 ? trcd_ns : timing_.t_rcd_ns;
  const double col_spacing = 4.0 * timing_.t_ck_ns;
  for (std::uint32_t c = 0; c < dram::kColumnsPerRow; ++c) {
    p.rd(bank, c, c == 0 ? first_delay : col_spacing);
  }
  p.pre(bank, timing_.t_rtp_ns);
  auto r = execute(p);
  if (!r.status.ok()) return Error{r.status.error().message};
  std::vector<std::uint8_t> out(dram::kBytesPerRow);
  for (std::size_t c = 0; c < r.reads.size(); ++c) {
    std::copy(r.reads[c].begin(), r.reads[c].end(),
              out.begin() + c * dram::kBytesPerColumn);
  }
  return out;
}

common::Expected<std::array<std::uint8_t, dram::kBytesPerColumn>>
Session::read_column_with_trcd(std::uint32_t bank, std::uint32_t row,
                               std::uint32_t column, double trcd_ns) {
  Program p(timing_);
  p.act(bank, row);
  p.rd(bank, column, trcd_ns);  // possibly < nominal: the experiment
  p.pre(bank, std::max(timing_.t_ras_ns - trcd_ns, timing_.t_rtp_ns));
  auto r = execute(p);
  if (!r.status.ok()) return Error{r.status.error().message};
  if (r.reads.size() != 1) return Error{"expected exactly one read burst"};
  return r.reads.front();
}

Status Session::hammer_double_sided(std::uint32_t bank, std::uint32_t row_a,
                                    std::uint32_t row_b, std::uint64_t count,
                                    double act_to_act_ns) {
  Program p(timing_);
  p.hammer(bank, row_a, row_b, count, act_to_act_ns);
  return execute(p).status;
}

Status Session::wait_ms(double ms) {
  if (!auto_refresh_) {
    Program p(timing_);
    p.wait_ns(common::ms_to_ns(ms));
    return execute(p).status;
  }
  // With refresh enabled, interleave REF commands at tREFI.
  double remaining_ns = common::ms_to_ns(ms);
  while (remaining_ns > 0.0) {
    const double chunk = std::min(remaining_ns, timing_.t_refi_ns);
    Program p(timing_);
    p.wait_ns(chunk);
    p.ref(timing_.t_rp_ns);
    auto r = execute(p);
    if (!r.status.ok()) return r.status;
    remaining_ns -= chunk;
  }
  return Status::ok_status();
}

}  // namespace vppstudy::softmc
