#include "softmc/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "softmc/fault_injector.hpp"

namespace vppstudy::softmc {

using common::Error;
using common::ErrorCode;
using common::Status;

namespace {

std::int64_t to_millivolts(double volts) noexcept {
  return static_cast<std::int64_t>(std::llround(volts * 1000.0));
}

}  // namespace

Session::Session(dram::ModuleProfile profile)
    : module_(std::move(profile)),
      timing_(dram::timing_for_speed_grade(module_.profile().frequency_mts)),
      rail_(common::kNominalVppV),
      checker_(timing_),
      dispatcher_(module_, checker_.violations()),
      ops_(timing_) {
  module_.set_vpp(rail_.voltage());
  module_.set_temperature(chamber_.temperature_c());
  // Observer order is part of the execution contract: the timing checker
  // must see every command first, then derived metrics accumulate.
  dispatcher_.add_observer(&checker_);
  dispatcher_.add_observer(&counters_);
}

void Session::reset_for_job() {
  set_fault_injector(nullptr);
  disable_trace();
  checker_.reset();
  counters_.reset();
  // Rail and chamber are small value types; reconstructing them reproduces
  // the constructor's state exactly (the chamber's PID plant temperature
  // must start pristine for a later settle() to be bit-identical to a fresh
  // session's).
  rail_ = PowerRail(common::kNominalVppV);
  chamber_ = ThermalChamber();
  clock_ns_ = 0.0;
  auto_refresh_ = false;
  module_.reset_device_state();
  module_.set_vpp(rail_.voltage());
  module_.set_temperature(chamber_.temperature_c());
}

void Session::set_fault_injector(FaultInjector* injector) {
  if (injector_ != nullptr) {
    dispatcher_.remove_observer(injector_);
    dispatcher_.set_interceptor(nullptr);
  }
  injector_ = injector;
  if (injector_ != nullptr) {
    dispatcher_.set_interceptor(injector_);
    dispatcher_.add_observer(injector_);
  }
}

void Session::enable_trace(std::size_t capacity) {
  disable_trace();
  trace_ = std::make_unique<CommandTraceRecorder>(capacity);
  dispatcher_.add_observer(trace_.get());
}

void Session::disable_trace() {
  if (!trace_) return;
  dispatcher_.remove_observer(trace_.get());
  trace_.reset();
}

Status Session::set_vpp(double vpp_v) {
  auto applied = rail_.set_voltage(vpp_v);
  if (!applied) {
    return std::move(applied)
        .error()
        .with_module(module_.profile().name)
        .with_vpp_mv(to_millivolts(vpp_v));
  }
  module_.set_vpp(*applied);
  if (!module_.responsive()) {
    return Error{ErrorCode::kModuleUnresponsive,
                 "module " + module_.profile().name +
                     " stopped communicating at VPP=" +
                     std::to_string(*applied) + "V (below VPPmin)"}
        .with_module(module_.profile().name)
        .with_vpp_mv(to_millivolts(*applied));
  }
  return Status::ok_status();
}

Status Session::set_temperature(double temp_c) {
  const auto settle = chamber_.settle(temp_c);
  module_.set_temperature(settle.temperature_c);
  if (!settle.converged) {
    return Error{ErrorCode::kThermalTimeout,
                 "thermal chamber failed to settle at " +
                     std::to_string(temp_c) + "C"}
        .with_module(module_.profile().name);
  }
  return Status::ok_status();
}

Status Session::init_row(std::uint32_t bank, std::uint32_t row,
                         const std::vector<std::uint8_t>& image) {
  auto program = ops_.init_row(bank, row, image);
  if (!program) {
    return std::move(program).error().with_module(module_.profile().name);
  }
  return execute(*program).status;
}

common::Expected<std::vector<std::uint8_t>> Session::read_row(
    std::uint32_t bank, std::uint32_t row, double trcd_ns) {
  auto r = execute(ops_.read_row(bank, row, trcd_ns));
  if (!r.status.ok()) {
    return std::move(r.status)
        .error()
        .with_bank_row(static_cast<std::int32_t>(bank), row)
        .with_context("read_row");
  }
  if (r.reads.size() != dram::kColumnsPerRow) {
    // A short read is a rig fault, not data: zero-filling the tail would
    // masquerade as bit flips in whatever experiment is verifying this row.
    return Error{ErrorCode::kReadUnderrun,
                 "row readout returned " + std::to_string(r.reads.size()) +
                     " of " + std::to_string(dram::kColumnsPerRow) +
                     " read bursts"}
        .with_module(module_.profile().name)
        .with_bank_row(static_cast<std::int32_t>(bank), row)
        .with_op("RD");
  }
  std::vector<std::uint8_t> out(dram::kBytesPerRow);
  for (std::size_t c = 0; c < r.reads.size(); ++c) {
    std::copy(r.reads[c].begin(), r.reads[c].end(),
              out.begin() + c * dram::kBytesPerColumn);
  }
  return out;
}

common::Expected<std::array<std::uint8_t, dram::kBytesPerColumn>>
Session::read_column_with_trcd(std::uint32_t bank, std::uint32_t row,
                               std::uint32_t column, double trcd_ns) {
  auto r = execute(ops_.read_column(bank, row, column, trcd_ns));
  if (!r.status.ok()) {
    return std::move(r.status)
        .error()
        .with_bank_row(static_cast<std::int32_t>(bank), row)
        .with_context("read_column_with_trcd");
  }
  if (r.reads.size() != 1) {
    return Error{ErrorCode::kReadUnderrun,
                 "expected exactly one read burst, got " +
                     std::to_string(r.reads.size())}
        .with_module(module_.profile().name)
        .with_bank_row(static_cast<std::int32_t>(bank), row)
        .with_op("RD");
  }
  return r.reads.front();
}

Status Session::hammer_double_sided(std::uint32_t bank, std::uint32_t row_a,
                                    std::uint32_t row_b, std::uint64_t count,
                                    double act_to_act_ns) {
  return execute(ops_.hammer_pair(bank, row_a, row_b, count, act_to_act_ns))
      .status;
}

Status Session::wait_ms(double ms) {
  if (!auto_refresh_) {
    return execute(ops_.wait(common::ms_to_ns(ms))).status;
  }
  // With refresh enabled, interleave REF commands at tREFI.
  double remaining_ns = common::ms_to_ns(ms);
  while (remaining_ns > 0.0) {
    const double chunk = std::min(remaining_ns, timing_.t_refi_ns);
    auto r = execute(ops_.wait(chunk, /*ref_after=*/true));
    if (!r.status.ok()) return r.status;
    remaining_ns -= chunk;
  }
  return Status::ok_status();
}

}  // namespace vppstudy::softmc
